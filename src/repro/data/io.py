"""CSV persistence for pair datasets.

Format: one row per pair, columns ``a_<attr>`` / ``b_<attr>`` / ``label``,
matching how the Magellan benchmark releases ship labeled pair tables.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from ..utils import atomic_write_text
from .records import EMDataset, EntityPair, Record

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset: EMDataset, path: str | Path) -> None:
    """Write a pair dataset as CSV plus a .meta.json sidecar.

    Both files land atomically (tmp + rename): a crash mid-save never
    leaves a truncated CSV or a CSV without its sidecar's predecessor.
    """
    path = Path(path)
    header = ([f"a_{a}" for a in dataset.schema]
              + [f"b_{a}" for a in dataset.schema] + ["label"])
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for pair in dataset.pairs:
        row = ([pair.record_a[a] for a in dataset.schema]
               + [pair.record_b[a] for a in dataset.schema]
               + [pair.label])
        writer.writerow(row)
    atomic_write_text(path, buffer.getvalue())
    meta = {
        "name": dataset.name,
        "domain": dataset.domain,
        "schema": dataset.schema,
        "text_attributes": dataset.text_attributes,
    }
    atomic_write_text(path.with_suffix(".meta.json"), json.dumps(meta))


def load_dataset(path: str | Path) -> EMDataset:
    """Read a dataset written by :func:`save_dataset`."""
    path = Path(path)
    meta = json.loads(path.with_suffix(".meta.json").read_text())
    schema = meta["schema"]
    pairs: list[EntityPair] = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        for row in reader:
            record_a = Record({a: row[f"a_{a}"] for a in schema})
            record_b = Record({a: row[f"b_{a}"] for a in schema})
            pairs.append(EntityPair(record_a, record_b, int(row["label"])))
    return EMDataset(
        name=meta["name"],
        domain=meta["domain"],
        schema=schema,
        pairs=pairs,
        text_attributes=meta.get("text_attributes"),
    )
