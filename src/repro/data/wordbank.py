"""The shared vocabulary of the synthetic world.

Everything textual in the reproduction — the unsupervised pre-training
corpus and the five entity-matching datasets — is generated from this word
bank.  That mirrors the real setup: BERT et al. are pre-trained on English
text and the EM datasets are English product/citation records, so language
knowledge transfers.  Here, "language knowledge" is concretely the synonym
structure: the pre-training corpus uses synonyms interchangeably in
identical contexts, matching records use *different* synonyms for the same
entity, and classical string similarity cannot bridge them.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SYNONYMS", "BRANDS", "PRODUCT_TYPES", "ADJECTIVES", "COLORS",
           "COMPONENTS", "UNITS", "GENRES", "VENUES", "FIRST_NAMES",
           "LAST_NAMES", "SONG_WORDS", "PAPER_TOPICS", "canonical",
           "synonym_groups", "all_content_words", "sample_synonym"]

# Synonym groups: the first entry is the canonical surface form.  A match
# pair may render the same underlying concept with any member, so bridging
# these groups is exactly the signal pre-training provides.
SYNONYMS: list[list[str]] = [
    ["phone", "smartphone", "handset", "mobile"],
    ["laptop", "notebook", "ultrabook"],
    ["tablet", "slate", "pad"],
    ["headphones", "earphones", "headset"],
    ["speaker", "soundbox", "loudspeaker"],
    ["camera", "shooter", "cam"],
    ["watch", "timepiece", "wristwatch"],
    ["television", "tv", "display panel"],
    ["monitor", "screen", "display"],
    ["keyboard", "keypad", "typeboard"],
    ["router", "gateway", "hub"],
    ["charger", "power adapter", "adapter"],
    ["battery", "power cell", "cell"],
    ["printer", "printing machine", "printworks"],
    ["drive", "disk", "storage unit"],
    ["wireless", "cordless", "untethered"],
    ["portable", "compact", "travel size"],
    ["fast", "quick", "rapid"],
    ["powerful", "strong", "high performance"],
    ["slim", "thin", "sleek"],
    ["durable", "rugged", "robust"],
    ["premium", "deluxe", "high end"],
    ["affordable", "budget", "low cost"],
    ["new", "brand new", "latest"],
    ["big", "large", "huge"],
    ["small", "little", "mini"],
    ["bright", "vivid", "brilliant"],
    ["quiet", "silent", "noiseless"],
    ["smart", "intelligent", "clever"],
    ["light", "lightweight", "featherweight"],
]

BRANDS: list[str] = [
    "apexon", "novatek", "zenix", "lumora", "vantor", "cryotech", "heliox",
    "quantix", "stellar", "orbix", "pyxel", "terravolt", "aerix", "mondial",
    "kitewave", "solara", "drakon", "velocity", "nimbus", "octavia",
]

PRODUCT_TYPES: list[str] = [group[0] for group in SYNONYMS[:15]]

ADJECTIVES: list[str] = [group[0] for group in SYNONYMS[15:]]

COLORS: list[str] = ["black", "white", "silver", "red", "blue", "gold",
                     "green", "gray", "pink", "bronze"]

COMPONENTS: list[str] = [
    "processor", "chipset", "sensor", "lens", "panel", "amplifier",
    "antenna", "memory", "cooling system", "microphone", "trackpad",
    "hinge", "frame", "casing", "interface",
]

UNITS: list[str] = ["gb", "tb", "mah", "inch", "hz", "mp", "watt", "gram"]

GENRES: list[str] = ["rock", "pop", "jazz", "folk", "electronic", "blues",
                     "classical", "country", "soul", "ambient"]

VENUES: list[str] = [
    "sigmod", "vldb", "icde", "edbt", "cidr", "kdd", "www", "acl",
    "neurips", "icml", "jmlr", "tods", "tkde", "pvldb",
]

FIRST_NAMES: list[str] = [
    "ada", "bruno", "carla", "dmitri", "elena", "farid", "greta", "hugo",
    "ines", "jonas", "keiko", "luis", "mara", "nils", "oriana", "pavel",
    "quinn", "rosa", "sven", "talia", "ursin", "vera", "wen", "xenia",
    "yusuf", "zora",
]

LAST_NAMES: list[str] = [
    "adler", "brunner", "castillo", "dupont", "eriksen", "fontana",
    "gruber", "hashimoto", "ivanov", "jensen", "keller", "lindqvist",
    "moretti", "novak", "okafor", "petrov", "quintana", "rossi",
    "stockinger", "tanaka", "ulrich", "varga", "weber", "xu", "yamada",
    "zimmermann",
]

SONG_WORDS: list[str] = [
    "midnight", "river", "echo", "golden", "thunder", "velvet", "wild",
    "horizon", "ember", "crystal", "shadow", "aurora", "drift", "silver",
    "burning", "hollow", "neon", "winter", "summer", "falling",
]

PAPER_TOPICS: list[str] = [
    "query optimization", "entity matching", "data integration",
    "stream processing", "index structures", "transaction processing",
    "graph analytics", "schema mapping", "data cleaning",
    "approximate joins", "cardinality estimation", "record linkage",
    "machine learning systems", "natural language interfaces",
]

_CANONICAL: dict[str, str] = {}
for _group in SYNONYMS:
    for _word in _group:
        _CANONICAL[_word] = _group[0]

_GROUP_OF: dict[str, list[str]] = {}
for _group in SYNONYMS:
    for _word in _group:
        _GROUP_OF[_word] = _group


def canonical(word: str) -> str:
    """Map any synonym to its group's canonical form (identity if none)."""
    return _CANONICAL.get(word, word)


def synonym_groups() -> list[list[str]]:
    return [list(group) for group in SYNONYMS]


def sample_synonym(word: str, rng: np.random.Generator,
                   p_substitute: float = 0.5) -> str:
    """Replace ``word`` with a random member of its synonym group."""
    group = _GROUP_OF.get(word)
    if group is None or rng.random() >= p_substitute:
        return word
    alternatives = [w for w in group if w != word]
    return alternatives[rng.integers(len(alternatives))]


def all_content_words() -> list[str]:
    """Every word the synthetic world can produce (for vocab sizing)."""
    words: set[str] = set()
    for group in SYNONYMS:
        for term in group:
            words.update(term.split())
    for bank in (BRANDS, COLORS, COMPONENTS, UNITS, GENRES, VENUES,
                 FIRST_NAMES, LAST_NAMES, SONG_WORDS):
        words.update(bank)
    for topic in PAPER_TOPICS:
        words.update(topic.split())
    return sorted(words)
