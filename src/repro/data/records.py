"""Data model for entity matching: records, labeled pairs, datasets."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Record", "EntityPair", "EMDataset", "DatasetStats"]


@dataclass
class Record:
    """One entity: an ordered mapping attribute -> string value.

    Missing values are empty strings (the convention of the Magellan
    dataset releases).
    """

    values: dict[str, str]

    def __getitem__(self, attribute: str) -> str:
        return self.values.get(attribute, "")

    def attributes(self) -> list[str]:
        return list(self.values)

    def text_blob(self, attributes: list[str] | None = None,
                  separator: str = " ") -> str:
        """Concatenate attribute values into one text blob (Figure 9).

        For "dirty" datasets, all attributes are concatenated; for the
        textual dataset only the description attribute is used — the
        caller picks via ``attributes``.
        """
        attrs = attributes if attributes is not None else self.attributes()
        parts = [self.values.get(a, "") for a in attrs]
        return separator.join(p for p in parts if p).strip()

    def copy(self) -> "Record":
        return Record(dict(self.values))


@dataclass
class EntityPair:
    """A candidate pair with its gold label (1 = match, 0 = no match)."""

    record_a: Record
    record_b: Record
    label: int

    def __post_init__(self):
        if self.label not in (0, 1):
            raise ValueError(f"label must be 0 or 1, got {self.label!r}")


@dataclass
class DatasetStats:
    """The Table 3 statistics of a dataset."""

    size: int
    num_matches: int
    num_attributes: int

    @property
    def match_rate(self) -> float:
        return self.num_matches / self.size if self.size else 0.0


@dataclass
class EMDataset:
    """A named collection of labeled candidate pairs with a fixed schema."""

    name: str
    domain: str
    schema: list[str]
    pairs: list[EntityPair] = field(default_factory=list)
    text_attributes: list[str] | None = None  # None -> use all (dirty style)

    def __len__(self) -> int:
        return len(self.pairs)

    def __iter__(self):
        return iter(self.pairs)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return EMDataset(self.name, self.domain, list(self.schema),
                             self.pairs[index],
                             text_attributes=self.text_attributes)
        return self.pairs[index]

    def stats(self) -> DatasetStats:
        return DatasetStats(
            size=len(self.pairs),
            num_matches=sum(p.label for p in self.pairs),
            num_attributes=len(self.schema),
        )

    def labels(self) -> list[int]:
        return [p.label for p in self.pairs]

    def serialization_attributes(self) -> list[str]:
        """Attributes used when serializing records to text blobs."""
        return self.text_attributes if self.text_attributes else self.schema

    def subset(self, indices: list[int], name_suffix: str = "") -> "EMDataset":
        return EMDataset(
            name=self.name + name_suffix,
            domain=self.domain,
            schema=list(self.schema),
            pairs=[self.pairs[i] for i in indices],
            text_attributes=self.text_attributes,
        )
