"""DBLP-Scholar: bibliographic data (Table 3: 28,707 pairs /
5,347 matches / 4 attributes).

Google Scholar metadata is crowd-scraped, so this is noisier than
DBLP-ACM (abbreviated authors, missing venues, typos) but still far
easier than the product datasets: Magellan reaches 82.5, DeepMatcher
93.8, transformers 95.6.  Used in its *dirty* variant.
"""

from __future__ import annotations

import numpy as np

from ..records import EMDataset
from ._base import GeneratorSpec, NoiseProfile, generate_from_universe
from .universe import perturb_citation, render_citation, sample_citation

__all__ = ["SPEC", "SCHEMA", "generate"]

SPEC = GeneratorSpec(name="dblp-scholar", domain="citation", size=28707,
                     num_matches=5347, hard_negative_fraction=0.5)
SCHEMA = ["title", "authors", "venue", "year"]

PROFILE = NoiseProfile(
    p_synonym=0.12,
    p_typo=0.03,
    p_drop_word=0.06,
    p_missing_attr=0.12,
    p_code_drift=0.3,
)


def generate(rng: np.random.Generator, scale: float = 1.0) -> EMDataset:
    """Generate the DBLP-Scholar analogue at the given scale."""
    return generate_from_universe(
        SPEC, SCHEMA, sample_citation, render_citation, perturb_citation,
        PROFILE, rng, scale=scale)
