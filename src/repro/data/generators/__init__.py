"""Synthetic generators for the five paper benchmarks (Table 3)."""

from . import abt_buy, dblp_acm, dblp_scholar, itunes_amazon, walmart_amazon
from ._base import (GeneratorSpec, NoiseProfile, apply_text_noise,
                    assemble_pairs, drift_code, generate_from_universe,
                    scale_counts, typo)

__all__ = [
    "abt_buy", "itunes_amazon", "walmart_amazon", "dblp_acm", "dblp_scholar",
    "GeneratorSpec", "NoiseProfile", "apply_text_noise", "assemble_pairs",
    "drift_code", "generate_from_universe", "scale_counts", "typo",
]
