"""Shared machinery for the synthetic dataset generators.

Each generator models a *universe of real-world entities*; a labeled pair
dataset is assembled from two noisy "database views" of that universe:

* a **match** renders the same underlying entity twice with independent
  noise (synonym substitution, typos, dropped words, missing attributes,
  format drift) — different surface, same semantics;
* a **hard negative** perturbs one or two semantic slots of an entity
  (different model number, capacity, year, ...) — similar surface,
  different semantics;
* a **random negative** pairs two unrelated entities.

The ratio of hard to random negatives and the noise profile control how
"challenging" a dataset is, which is how the five paper datasets get their
distinct difficulty levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..records import EMDataset, EntityPair, Record
from .. import wordbank

__all__ = ["NoiseProfile", "GeneratorSpec", "apply_text_noise",
           "generate_from_universe",
           "typo", "drift_code", "assemble_pairs", "scale_counts"]

_ALPHABET = "abcdefghijklmnopqrstuvwxyz"


@dataclass
class NoiseProfile:
    """Per-view corruption knobs applied when rendering an entity."""

    p_synonym: float = 0.4       # replace a word with a synonym
    p_typo: float = 0.05         # character-level typo per word
    p_drop_word: float = 0.1     # drop a word from free text
    p_missing_attr: float = 0.1  # blank an attribute entirely
    p_code_drift: float = 0.5    # reformat model numbers / codes


@dataclass
class GeneratorSpec:
    """Target pair counts (Table 3) and negative mix for one dataset."""

    name: str
    domain: str
    size: int
    num_matches: int
    hard_negative_fraction: float = 0.7


def scale_counts(spec: GeneratorSpec, scale: float) -> tuple[int, int]:
    """Scale (size, matches) down for fast runs; keeps the match rate."""
    if not 0.0 < scale <= 1.0:
        raise ValueError(f"scale must be in (0, 1]: {scale}")
    size = max(int(round(spec.size * scale)), 20)
    matches = max(int(round(spec.num_matches * scale)), 5)
    matches = min(matches, size - 5)
    return size, matches


def typo(word: str, rng: np.random.Generator) -> str:
    """One random character edit (swap / drop / replace / duplicate)."""
    if len(word) < 3:
        return word
    i = int(rng.integers(1, len(word) - 1))
    kind = rng.integers(4)
    if kind == 0:  # swap adjacent
        chars = list(word)
        chars[i], chars[i - 1] = chars[i - 1], chars[i]
        return "".join(chars)
    if kind == 1:  # drop
        return word[:i] + word[i + 1:]
    if kind == 2:  # replace
        return word[:i] + _ALPHABET[rng.integers(26)] + word[i + 1:]
    return word[:i] + word[i] + word[i:]  # duplicate


def apply_text_noise(text: str, profile: NoiseProfile,
                     rng: np.random.Generator) -> str:
    """Synonym-substitute, typo and drop words of a free-text value."""
    words = text.split()
    out: list[str] = []
    for word in words:
        if len(words) > 3 and rng.random() < profile.p_drop_word:
            continue
        replaced = wordbank.sample_synonym(word, rng, profile.p_synonym)
        # Multi-word synonyms come back as phrases; keep them intact.
        for piece in replaced.split():
            if rng.random() < profile.p_typo:
                piece = typo(piece, rng)
            out.append(piece)
    return " ".join(out) if out else text


def drift_code(code: str, rng: np.random.Generator,
               probability: float) -> str:
    """Reformat an identifier ('zx4821' -> 'zx-4821' / 'ZX 4821' ...)."""
    if rng.random() >= probability:
        return code
    style = rng.integers(3)
    head = code.rstrip("0123456789")
    tail = code[len(head):]
    if style == 0 and head and tail:
        return f"{head}-{tail}"
    if style == 1 and head and tail:
        return f"{head} {tail}"
    return code.upper()


def assemble_pairs(name: str, domain: str, schema: list[str],
                   matches: list[tuple[Record, Record]],
                   hard_negatives: list[tuple[Record, Record]],
                   random_negatives: list[tuple[Record, Record]],
                   rng: np.random.Generator,
                   text_attributes: list[str] | None = None) -> EMDataset:
    """Combine pair groups, shuffle, and wrap in an :class:`EMDataset`."""
    pairs = (
        [EntityPair(a, b, 1) for a, b in matches]
        + [EntityPair(a, b, 0) for a, b in hard_negatives]
        + [EntityPair(a, b, 0) for a, b in random_negatives]
    )
    order = rng.permutation(len(pairs))
    return EMDataset(
        name=name,
        domain=domain,
        schema=schema,
        pairs=[pairs[i] for i in order],
        text_attributes=text_attributes,
    )


def generate_from_universe(spec: GeneratorSpec, schema: list[str],
                           sample_fn, render_fn, perturb_fn,
                           profile: NoiseProfile,
                           rng: np.random.Generator,
                           text_attributes: list[str] | None = None,
                           scale: float = 1.0) -> EMDataset:
    """Drive a universe's sample/render/perturb functions into a dataset."""
    size, n_matches = scale_counts(spec, scale)
    n_negatives = size - n_matches
    n_hard = int(round(n_negatives * spec.hard_negative_fraction))
    n_random = n_negatives - n_hard

    matches = []
    for _ in range(n_matches):
        entity = sample_fn(rng)
        matches.append((render_fn(entity, schema, profile, rng),
                        render_fn(entity, schema, profile, rng)))

    hard_negatives = []
    for _ in range(n_hard):
        entity = sample_fn(rng)
        similar = perturb_fn(entity, rng)
        hard_negatives.append((render_fn(entity, schema, profile, rng),
                               render_fn(similar, schema, profile, rng)))

    random_negatives = []
    for _ in range(n_random):
        random_negatives.append(
            (render_fn(sample_fn(rng), schema, profile, rng),
             render_fn(sample_fn(rng), schema, profile, rng)))

    return assemble_pairs(spec.name, spec.domain, schema, matches,
                          hard_negatives, random_negatives, rng,
                          text_attributes=text_attributes)
