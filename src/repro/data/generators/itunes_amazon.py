"""iTunes-Amazon: music data (Table 3: 539 pairs / 132 matches /
8 attributes).

The defining property is *tiny size* — the paper's Figure 11 shows F1
collapsing to ~0 after one epoch because there is so little training
data.  Noise is moderate; the challenge is statistical, not textual.
Used in its *dirty* variant (values randomly moved into ``song_name``).
"""

from __future__ import annotations

import numpy as np

from ..records import EMDataset
from ._base import GeneratorSpec, NoiseProfile, generate_from_universe
from .universe import perturb_music, render_music, sample_music

__all__ = ["SPEC", "SCHEMA", "generate"]

SPEC = GeneratorSpec(name="itunes-amazon", domain="music", size=539,
                     num_matches=132, hard_negative_fraction=0.7)
SCHEMA = ["song_name", "artist_name", "album_name", "genre", "price",
          "copyright", "time", "released"]

PROFILE = NoiseProfile(
    p_synonym=0.3,
    p_typo=0.04,
    p_drop_word=0.05,
    p_missing_attr=0.15,
    p_code_drift=0.5,
)


def generate(rng: np.random.Generator, scale: float = 1.0) -> EMDataset:
    """Generate the iTunes-Amazon analogue at the given scale."""
    return generate_from_universe(
        SPEC, SCHEMA, sample_music, render_music, perturb_music,
        PROFILE, rng, scale=scale)
