"""Walmart-Amazon: product data (Table 3: 10,242 pairs / 962 matches /
5 attributes).

A hard dataset (Magellan: 37.4 F1 on the dirty variant): structured
product attributes, but matches differ heavily in surface form (synonyms,
model-number drift, missing values).  Used in its *dirty* variant.
"""

from __future__ import annotations

import numpy as np

from ..records import EMDataset
from ._base import GeneratorSpec, NoiseProfile, generate_from_universe
from .universe import perturb_product, render_product, sample_product

__all__ = ["SPEC", "SCHEMA", "generate"]

SPEC = GeneratorSpec(name="walmart-amazon", domain="products", size=10242,
                     num_matches=962, hard_negative_fraction=0.7)
SCHEMA = ["title", "category", "brand", "modelno", "price"]

PROFILE = NoiseProfile(
    p_synonym=0.5,
    p_typo=0.05,
    p_drop_word=0.1,
    p_missing_attr=0.12,
    p_code_drift=0.6,
)


def generate(rng: np.random.Generator, scale: float = 1.0) -> EMDataset:
    """Generate the Walmart-Amazon analogue at the given scale."""
    return generate_from_universe(
        SPEC, SCHEMA, sample_product, render_product, perturb_product,
        PROFILE, rng, scale=scale)
