"""Abt-Buy: textual product data (Table 3: 9,575 pairs / 1,028 matches /
3 attributes).

The paper uses *only* the noisy ``description`` attribute — "no
informative attribute (e.g. the title)" — which is what makes this the
hardest dataset (Magellan: 33.0 F1).  The generator therefore applies the
heaviest free-text noise: frequent synonym substitution, dropped words and
model-code drift inside a long description blob.
"""

from __future__ import annotations

import numpy as np

from ..records import EMDataset
from ._base import GeneratorSpec, NoiseProfile, generate_from_universe
from .universe import perturb_product, render_product, sample_product

__all__ = ["SPEC", "SCHEMA", "generate"]

SPEC = GeneratorSpec(name="abt-buy", domain="products", size=9575,
                     num_matches=1028, hard_negative_fraction=0.65)
SCHEMA = ["name", "description", "price"]
TEXT_ATTRIBUTES = ["description"]

PROFILE = NoiseProfile(
    p_synonym=0.6,
    p_typo=0.05,
    p_drop_word=0.15,
    p_missing_attr=0.02,
    p_code_drift=0.7,
)


def generate(rng: np.random.Generator, scale: float = 1.0) -> EMDataset:
    """Generate the Abt-Buy analogue at the given scale."""
    return generate_from_universe(
        SPEC, SCHEMA, sample_product, render_product, perturb_product,
        PROFILE, rng, text_attributes=TEXT_ATTRIBUTES, scale=scale)
