"""Entity universes: the latent real-world objects behind the datasets.

Entities are semantic tuples (brand, type, model code, capacity, ...).
Renderers turn an entity into a noisy :class:`Record` for one database
view; perturbations produce the *hard negatives* — entities that look
similar but differ in a discriminative slot.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..records import Record
from .. import wordbank
from ._base import NoiseProfile, apply_text_noise, drift_code

__all__ = ["ProductEntity", "MusicEntity", "CitationEntity",
           "sample_product", "sample_music", "sample_citation",
           "perturb_product", "perturb_music", "perturb_citation",
           "render_product", "render_music", "render_citation"]


def _choice(rng: np.random.Generator, items: list[str]) -> str:
    return items[rng.integers(len(items))]


# --------------------------------------------------------------------------
# Products (Abt-Buy, Walmart-Amazon)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProductEntity:
    brand: str
    ptype: str              # canonical product type (synonym group head)
    adjectives: tuple[str, ...]
    color: str
    model_code: str
    capacity: int
    unit: str
    component: str
    price: float


def sample_product(rng: np.random.Generator) -> ProductEntity:
    head = _choice(rng, "abcdefghjkmnpqrstvwxz")
    head2 = _choice(rng, "abcdefghjkmnpqrstvwxz")
    code = f"{head}{head2}{rng.integers(100, 9999)}"
    return ProductEntity(
        brand=_choice(rng, wordbank.BRANDS),
        ptype=_choice(rng, wordbank.PRODUCT_TYPES),
        adjectives=tuple(rng.choice(wordbank.ADJECTIVES, size=2,
                                    replace=False)),
        color=_choice(rng, wordbank.COLORS),
        model_code=code,
        capacity=int(_choice(rng, ["16", "32", "64", "128", "256", "512"])),
        unit=_choice(rng, wordbank.UNITS[:3]),
        component=_choice(rng, wordbank.COMPONENTS),
        price=round(float(rng.uniform(20, 1500)), 2),
    )


def perturb_product(entity: ProductEntity,
                    rng: np.random.Generator) -> ProductEntity:
    """A similar but different product.

    Always regenerates the numeric tail of the model code (different
    products ship under different codes) plus one more semantic slot, so
    hard negatives are distinguishable in principle yet break any matcher
    that cannot align codes across format drift.
    """
    head = entity.model_code.rstrip("0123456789")
    entity = replace(entity,
                     model_code=f"{head}{rng.integers(100, 9999)}")
    kind = rng.integers(3)
    if kind == 0:
        return replace(entity, price=round(
            entity.price * float(rng.uniform(0.7, 1.3)), 2))
    if kind == 1:
        choices = [c for c in (16, 32, 64, 128, 256, 512)
                   if c != entity.capacity]
        return replace(entity,
                       capacity=int(_choice(rng, [str(c) for c in choices])),
                       color=_choice(rng, wordbank.COLORS))
    return replace(entity, ptype=_choice(rng, wordbank.PRODUCT_TYPES))


def _product_description(entity: ProductEntity,
                         rng: np.random.Generator) -> str:
    templates = [
        "the {adj0} {brand} {ptype} {code} features a {adj1} {component} "
        "with {capacity} {unit} available in {color}",
        "{brand} {ptype} {code} a {adj0} and {adj1} device with "
        "{capacity} {unit} {component} in {color}",
        "brand new {brand} {code} {ptype} with {adj0} {component} "
        "{capacity} {unit} of storage color {color} {adj1} design",
        "the {brand} {ptype} now with a {adj0} {component} and "
        "{capacity} {unit} comes in {color} model {code} {adj1} build",
    ]
    template = templates[rng.integers(len(templates))]
    return template.format(
        brand=entity.brand, ptype=entity.ptype, code=entity.model_code,
        adj0=entity.adjectives[0], adj1=entity.adjectives[1],
        component=entity.component, capacity=entity.capacity,
        unit=entity.unit, color=entity.color)


def render_product(entity: ProductEntity, schema: list[str],
                   profile: NoiseProfile,
                   rng: np.random.Generator) -> Record:
    """Render a product into the given schema with view-specific noise."""
    title = (f"{entity.brand} {entity.ptype} {entity.model_code} "
             f"{entity.color}")
    description = _product_description(entity, rng)
    full_values = {
        "title": apply_text_noise(title, profile, rng),
        "name": apply_text_noise(title, profile, rng),
        "brand": entity.brand,
        "category": wordbank.canonical(entity.ptype),
        "modelno": drift_code(entity.model_code, rng, profile.p_code_drift),
        "description": apply_text_noise(description, profile, rng),
        "price": _drift_price(entity.price, rng),
    }
    values = {}
    for attribute in schema:
        value = full_values.get(attribute, "")
        if value and rng.random() < profile.p_missing_attr:
            value = ""
        values[attribute] = value
    return Record(values)


def _drift_price(price: float, rng: np.random.Generator) -> str:
    style = rng.integers(3)
    if style == 0:
        return f"{price:.2f}"
    if style == 1:
        return f"$ {price:.2f}"
    return f"{price:.0f}.00" if rng.random() < 0.5 else f"{price:.2f} usd"


# --------------------------------------------------------------------------
# Music (iTunes-Amazon)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class MusicEntity:
    song: str
    artist: str
    album: str
    genre: str
    seconds: int
    released: int
    price: float
    copyright_holder: str


def sample_music(rng: np.random.Generator) -> MusicEntity:
    words = rng.choice(wordbank.SONG_WORDS, size=2, replace=False)
    album_words = rng.choice(wordbank.SONG_WORDS, size=2, replace=False)
    artist = (f"{_choice(rng, wordbank.FIRST_NAMES)} "
              f"{_choice(rng, wordbank.LAST_NAMES)}")
    return MusicEntity(
        song=" ".join(words),
        artist=artist,
        album=" ".join(album_words),
        genre=_choice(rng, wordbank.GENRES),
        seconds=int(rng.integers(120, 420)),
        released=int(rng.integers(1995, 2019)),
        price=round(float(rng.uniform(0.69, 1.99)), 2),
        copyright_holder=_choice(rng, wordbank.BRANDS) + " records",
    )


def perturb_music(entity: MusicEntity,
                  rng: np.random.Generator) -> MusicEntity:
    kind = rng.integers(3)
    if kind == 0:  # different song, same artist & album family
        words = rng.choice(wordbank.SONG_WORDS, size=2, replace=False)
        return replace(entity, song=" ".join(words),
                       seconds=int(rng.integers(120, 420)))
    if kind == 1:  # same song title, different artist (cover version)
        artist = (f"{_choice(rng, wordbank.FIRST_NAMES)} "
                  f"{_choice(rng, wordbank.LAST_NAMES)}")
        return replace(entity, artist=artist,
                       released=int(rng.integers(1995, 2019)))
    return replace(entity, album=" ".join(
        rng.choice(wordbank.SONG_WORDS, size=2, replace=False)),
        released=entity.released + int(rng.integers(1, 5)))


def render_music(entity: MusicEntity, schema: list[str],
                 profile: NoiseProfile, rng: np.random.Generator) -> Record:
    minutes, secs = divmod(entity.seconds, 60)
    time_str = (f"{minutes}:{secs:02d}" if rng.random() < 0.5
                else f"{entity.seconds} sec")
    full_values = {
        "song_name": apply_text_noise(entity.song, profile, rng),
        "artist_name": apply_text_noise(entity.artist, profile, rng),
        "album_name": apply_text_noise(entity.album, profile, rng),
        "genre": entity.genre,
        "price": _drift_price(entity.price, rng),
        "copyright": entity.copyright_holder,
        "time": time_str,
        "released": (str(entity.released) if rng.random() < 0.5
                     else f"{_choice(rng, ['jan','mar','jun','sep','nov'])} "
                          f"{entity.released}"),
    }
    values = {}
    for attribute in schema:
        value = full_values.get(attribute, "")
        if value and rng.random() < profile.p_missing_attr:
            value = ""
        values[attribute] = value
    return Record(values)


# --------------------------------------------------------------------------
# Citations (DBLP-ACM, DBLP-Scholar)
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class CitationEntity:
    title: str
    authors: tuple[str, ...]
    venue: str
    year: int


def sample_citation(rng: np.random.Generator) -> CitationEntity:
    topic = _choice(rng, wordbank.PAPER_TOPICS)
    pattern = rng.integers(4)
    if pattern == 0:
        title = f"efficient {topic} for large scale data"
    elif pattern == 1:
        title = f"a survey of {topic} techniques"
    elif pattern == 2:
        title = f"{topic} revisited a new approach"
    else:
        title = f"towards scalable {topic} in modern systems"
    n_authors = int(rng.integers(1, 4))
    authors = tuple(
        f"{_choice(rng, wordbank.FIRST_NAMES)} "
        f"{_choice(rng, wordbank.LAST_NAMES)}"
        for _ in range(n_authors))
    return CitationEntity(
        title=title,
        authors=authors,
        venue=_choice(rng, wordbank.VENUES),
        year=int(rng.integers(1998, 2019)),
    )


def perturb_citation(entity: CitationEntity,
                     rng: np.random.Generator) -> CitationEntity:
    """A related but different paper: the topic always changes, plus one
    of (year, authors, venue) — follow-up work, survey of another topic,
    or a different group's paper in the same venue."""
    topic = _choice(rng, wordbank.PAPER_TOPICS)
    pattern = rng.integers(3)
    if pattern == 0:  # follow-up by the same authors
        return replace(entity,
                       title=f"efficient {topic} for large scale data",
                       year=entity.year + int(rng.integers(1, 4)))
    if pattern == 1:  # different group, same venue
        return replace(entity, title=f"a survey of {topic} techniques",
                       authors=tuple(
                           f"{_choice(rng, wordbank.FIRST_NAMES)} "
                           f"{_choice(rng, wordbank.LAST_NAMES)}"
                           for _ in range(len(entity.authors))))
    return replace(entity,
                   title=f"towards scalable {topic} in modern systems",
                   venue=_choice(rng, wordbank.VENUES),
                   year=entity.year + int(rng.integers(1, 3)))


def _abbreviate_author(name: str, rng: np.random.Generator,
                       probability: float) -> str:
    if rng.random() >= probability:
        return name
    first, _, last = name.partition(" ")
    return f"{first[0]} {last}" if last else name


def render_citation(entity: CitationEntity, schema: list[str],
                    profile: NoiseProfile,
                    rng: np.random.Generator,
                    abbreviate_probability: float = 0.4) -> Record:
    authors = ", ".join(
        _abbreviate_author(a, rng, abbreviate_probability)
        for a in entity.authors)
    full_values = {
        "title": apply_text_noise(entity.title, profile, rng),
        "authors": authors,
        "venue": (entity.venue if rng.random() < 0.6
                  else f"proceedings of {entity.venue}"),
        "year": str(entity.year),
    }
    values = {}
    for attribute in schema:
        value = full_values.get(attribute, "")
        if value and rng.random() < profile.p_missing_attr:
            value = ""
        values[attribute] = value
    return Record(values)
