"""DBLP-ACM: bibliographic data (Table 3: 12,363 pairs / 2,220 matches /
4 attributes).

The *easy* dataset: both sources publish clean metadata, so matching
titles are near-identical and even Magellan reaches 91.9 F1 (DeepMatcher
98.1).  Noise here is minimal; the reproduction must show that all
approaches are strong and transformers win only by a small margin
(ΔF1 = 0.8 in Table 5).  Used in its *dirty* variant.
"""

from __future__ import annotations

import numpy as np

from ..records import EMDataset
from ._base import GeneratorSpec, NoiseProfile, generate_from_universe
from .universe import perturb_citation, render_citation, sample_citation

__all__ = ["SPEC", "SCHEMA", "generate"]

SPEC = GeneratorSpec(name="dblp-acm", domain="citation", size=12363,
                     num_matches=2220, hard_negative_fraction=0.4)
SCHEMA = ["title", "authors", "venue", "year"]

PROFILE = NoiseProfile(
    p_synonym=0.04,
    p_typo=0.005,
    p_drop_word=0.01,
    p_missing_attr=0.02,
    p_code_drift=0.1,
)


def generate(rng: np.random.Generator, scale: float = 1.0) -> EMDataset:
    """Generate the DBLP-ACM analogue at the given scale."""
    return generate_from_universe(
        SPEC, SCHEMA, sample_citation, render_citation, perturb_citation,
        PROFILE, rng, scale=scale)
