"""Benchmark catalog: the five paper datasets by name.

``load_benchmark`` is the single entry point experiments use.  The paper
evaluates Abt-Buy in its textual form and the other four in their *dirty*
form (values moved into the title attribute with p = 0.5); ``variant``
defaults accordingly.
"""

from __future__ import annotations

import numpy as np

from .dirty import make_dirty
from .records import EMDataset
from .generators import (abt_buy, dblp_acm, dblp_scholar, itunes_amazon,
                         walmart_amazon)
from ..utils import child_rng

__all__ = ["BENCHMARKS", "PAPER_VARIANTS", "load_benchmark",
           "benchmark_names", "table3_spec"]

BENCHMARKS = {
    "abt-buy": abt_buy,
    "itunes-amazon": itunes_amazon,
    "walmart-amazon": walmart_amazon,
    "dblp-acm": dblp_acm,
    "dblp-scholar": dblp_scholar,
}

# Variant used in the paper's evaluation (Table 5, Figures 10-14).
PAPER_VARIANTS = {
    "abt-buy": "textual",
    "itunes-amazon": "dirty",
    "walmart-amazon": "dirty",
    "dblp-acm": "dirty",
    "dblp-scholar": "dirty",
}

# Which attribute plays the role of "title" in the dirty transform.
_TITLE_ATTRIBUTE = {
    "abt-buy": "name",
    "itunes-amazon": "song_name",
    "walmart-amazon": "title",
    "dblp-acm": "title",
    "dblp-scholar": "title",
}


def benchmark_names() -> list[str]:
    """Names of the five paper benchmarks."""
    return list(BENCHMARKS)


def table3_spec(name: str):
    """The paper's Table 3 statistics for a dataset."""
    return BENCHMARKS[name].SPEC


def load_benchmark(name: str, seed: int = 0, scale: float = 1.0,
                   variant: str | None = None) -> EMDataset:
    """Generate a benchmark dataset.

    Parameters
    ----------
    name:
        One of :func:`benchmark_names`.
    seed:
        Root seed; generation and the dirty transform derive child
        generators from it, so the same seed always yields the same data.
    scale:
        Fraction of the paper's Table 3 row counts to generate.
    variant:
        ``"clean"``, ``"dirty"`` or ``"textual"``; ``None`` selects the
        variant the paper evaluates (dirty for all but Abt-Buy).
    """
    if name not in BENCHMARKS:
        raise KeyError(f"unknown benchmark {name!r}; "
                       f"available: {benchmark_names()}")
    variant = variant or PAPER_VARIANTS[name]
    if variant not in ("clean", "dirty", "textual"):
        raise ValueError(f"unknown variant {variant!r}")
    module = BENCHMARKS[name]
    dataset = module.generate(child_rng(seed, "generate", name), scale=scale)
    if variant == "dirty":
        dataset = make_dirty(dataset, child_rng(seed, "dirty", name),
                             title_attribute=_TITLE_ATTRIBUTE[name])
    return dataset
