"""The "dirty data" corruption of Mudgal et al. (SIGMOD 2018).

From the paper (§5.1): "They suggest for each attribute other than 'title'
to randomly move each value to the attribute 'title' in the same tuple
with a probability of p = 0.5."  The moved value is appended to the title
and the source attribute becomes empty — so the information survives but
its structure is destroyed, which is what breaks attribute-aligned
matchers like Magellan.
"""

from __future__ import annotations

import numpy as np

from .records import EMDataset, EntityPair, Record

__all__ = ["make_dirty", "dirty_record"]


def dirty_record(record: Record, title_attribute: str,
                 rng: np.random.Generator,
                 move_probability: float = 0.5) -> Record:
    """Return a corrupted copy of ``record``."""
    values = dict(record.values)
    title_parts = [values.get(title_attribute, "")]
    for attribute in record.attributes():
        if attribute == title_attribute:
            continue
        value = values.get(attribute, "")
        if value and rng.random() < move_probability:
            title_parts.append(value)
            values[attribute] = ""
    values[title_attribute] = " ".join(p for p in title_parts if p).strip()
    return Record(values)


def make_dirty(dataset: EMDataset, rng: np.random.Generator,
               title_attribute: str | None = None,
               move_probability: float = 0.5) -> EMDataset:
    """Apply the dirty transform to every record of every pair."""
    title = title_attribute or dataset.schema[0]
    if title not in dataset.schema:
        raise ValueError(
            f"title attribute {title!r} not in schema {dataset.schema}")
    dirty_pairs = [
        EntityPair(
            record_a=dirty_record(pair.record_a, title, rng,
                                  move_probability),
            record_b=dirty_record(pair.record_b, title, rng,
                                  move_probability),
            label=pair.label,
        )
        for pair in dataset.pairs
    ]
    return EMDataset(
        name=dataset.name + "-dirty",
        domain=dataset.domain,
        schema=list(dataset.schema),
        pairs=dirty_pairs,
        text_attributes=dataset.text_attributes,
    )
