"""Blocking: candidate-pair generation for entity matching.

The paper's benchmark datasets ship *pre-blocked* — someone already ran a
cheap filter over the |A| x |B| cross product to produce a candidate set
the matcher classifies.  This module provides that missing stage so the
library works on raw record collections too:

* :class:`TokenBlocker` — inverted-index blocking on shared tokens, with
  a document-frequency cut so stop-word-like tokens do not explode the
  candidate set;
* :class:`SortedNeighborhoodBlocker` — the classic sliding-window method
  over a sort key (Hernandez & Stolfo, 1995);
* :func:`evaluate_blocking` — pairs-completeness / reduction-ratio, the
  standard blocking quality measures (Christen 2012).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .records import Record

__all__ = ["CandidatePair", "TokenBlocker", "SortedNeighborhoodBlocker",
           "BlockingQuality", "evaluate_blocking"]


@dataclass(frozen=True)
class CandidatePair:
    """Indices of a candidate (record from A, record from B)."""

    index_a: int
    index_b: int


class TokenBlocker:
    """Inverted-index blocking: records sharing >= ``min_shared`` tokens
    (after a document-frequency cut) become candidates.

    Parameters
    ----------
    attributes:
        Attributes whose values are tokenized into blocking keys; None
        uses every attribute.
    max_token_frequency:
        Tokens appearing in more than this fraction of records on either
        side are ignored (they would pair everything with everything).
    min_shared:
        Minimum number of shared surviving tokens for a candidate.
    """

    def __init__(self, attributes: list[str] | None = None,
                 max_token_frequency: float = 0.2,
                 min_shared: int = 1):
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        if min_shared < 1:
            raise ValueError("min_shared must be >= 1")
        self.attributes = attributes
        self.max_token_frequency = max_token_frequency
        self.min_shared = min_shared

    def _tokens(self, record: Record) -> set[str]:
        text = record.text_blob(self.attributes)
        return set(text.lower().split())

    def candidates(self, records_a: list[Record],
                   records_b: list[Record]) -> list[CandidatePair]:
        """All pairs sharing enough informative tokens."""
        tokens_b: dict[str, list[int]] = defaultdict(list)
        sets_b = [self._tokens(r) for r in records_b]
        for j, tokens in enumerate(sets_b):
            for token in tokens:
                tokens_b[token].append(j)

        limit_a = self.max_token_frequency * max(len(records_a), 1)
        limit_b = self.max_token_frequency * max(len(records_b), 1)
        frequency_a: dict[str, int] = defaultdict(int)
        sets_a = [self._tokens(r) for r in records_a]
        for tokens in sets_a:
            for token in tokens:
                frequency_a[token] += 1

        pairs: list[CandidatePair] = []
        seen: set[tuple[int, int]] = set()
        for i, tokens in enumerate(sets_a):
            shared: dict[int, int] = defaultdict(int)
            for token in tokens:
                if frequency_a[token] > limit_a:
                    continue
                postings = tokens_b.get(token, ())
                if len(postings) > limit_b:
                    continue
                for j in postings:
                    shared[j] += 1
            for j, count in shared.items():
                if count >= self.min_shared and (i, j) not in seen:
                    seen.add((i, j))
                    pairs.append(CandidatePair(i, j))
        return pairs


class SortedNeighborhoodBlocker:
    """Sort both collections by a key, slide a window over the merge.

    Records whose keys land within ``window`` positions of each other in
    the merged ordering become candidates.
    """

    def __init__(self, key_attribute: str, window: int = 5,
                 key_length: int = 8):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.key_attribute = key_attribute
        self.window = window
        self.key_length = key_length

    def _key(self, record: Record) -> str:
        return record[self.key_attribute].lower()[: self.key_length]

    def candidates(self, records_a: list[Record],
                   records_b: list[Record]) -> list[CandidatePair]:
        merged = ([(self._key(r), 0, i) for i, r in enumerate(records_a)]
                  + [(self._key(r), 1, j) for j, r in enumerate(records_b)])
        merged.sort(key=lambda item: item[0])
        pairs: set[tuple[int, int]] = set()
        for position, (_, source, index) in enumerate(merged):
            lo = max(0, position - self.window)
            for _, other_source, other_index in merged[lo:position]:
                if source != other_source:
                    if source == 0:
                        pairs.add((index, other_index))
                    else:
                        pairs.add((other_index, index))
        return [CandidatePair(i, j) for i, j in sorted(pairs)]


@dataclass
class BlockingQuality:
    """Standard blocking metrics."""

    pairs_completeness: float   # recall of true matches in candidates
    reduction_ratio: float      # 1 - |candidates| / |cross product|
    num_candidates: int

    def __str__(self) -> str:
        return (f"PC {self.pairs_completeness:.2f}, "
                f"RR {self.reduction_ratio:.2f}, "
                f"{self.num_candidates} candidates")


def evaluate_blocking(candidates: list[CandidatePair],
                      true_matches: set[tuple[int, int]],
                      size_a: int, size_b: int) -> BlockingQuality:
    """Pairs-completeness and reduction ratio of a candidate set."""
    candidate_set = {(c.index_a, c.index_b) for c in candidates}
    found = len(candidate_set & true_matches)
    completeness = found / len(true_matches) if true_matches else 1.0
    cross = size_a * size_b
    reduction = 1.0 - len(candidate_set) / cross if cross else 0.0
    return BlockingQuality(
        pairs_completeness=completeness,
        reduction_ratio=reduction,
        num_candidates=len(candidate_set),
    )
