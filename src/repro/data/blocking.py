"""Blocking: scalable candidate-pair generation for entity matching.

The paper's benchmark datasets ship *pre-blocked* — someone already ran a
cheap filter over the |A| x |B| cross product to produce a candidate set
the matcher classifies.  This module provides that missing stage so the
library works on raw record collections too, at catalog scale:

* :class:`Blocker` — the protocol every blocker implements: streaming,
  batched candidate emission (:meth:`Blocker.iter_candidates`) in both
  A x B *linkage* mode and single-collection *self-join* (dedup) mode,
  so 100k+ records never materialize the cross product;
* :class:`TokenBlocker` — inverted-index blocking on shared tokens, with
  a document-frequency cut so stop-word-like tokens do not explode the
  candidate set;
* :class:`SortedNeighborhoodBlocker` — the classic sliding-window method
  over a sort key (Hernandez & Stolfo, 1995);
* :class:`TfIdfBlocker` — sparse cosine similarity over token TF-IDF
  vectors with a top-k neighbor cut, accumulated through an inverted
  index (never a dense similarity matrix);
* :class:`MinHashLSHBlocker` — seeded shingling, ``n`` MinHash
  permutations, banded locality-sensitive hashing with a tunable
  ``(bands, rows)`` collision curve (Broder 1997; Leskovec et al.,
  *Mining of Massive Datasets* ch. 3);
* :func:`evaluate_blocking` — pairs-completeness / reduction-ratio, the
  standard blocking quality measures (Christen 2012).

Determinism contract: every blocker is a pure function of its
parameters, its seed (where applicable) and the record *contents* —
two runs over the same input produce identical candidate lists, and the
candidate *set* of :class:`TokenBlocker` / :class:`TfIdfBlocker` /
:class:`MinHashLSHBlocker` is invariant under permutation of the input
records (up to index relabeling).  :class:`SortedNeighborhoodBlocker`
is the documented exception: equal sort keys are windowed in input
order, so its candidate set can differ across permutations.
"""

from __future__ import annotations

import hashlib
import re
from collections import defaultdict
from dataclasses import dataclass
from math import log
from typing import Iterable, Iterator

import numpy as np

from .records import Record

__all__ = ["CandidatePair", "Blocker", "TokenBlocker",
           "SortedNeighborhoodBlocker", "TfIdfBlocker",
           "MinHashLSHBlocker", "BlockingQuality", "evaluate_blocking"]


@dataclass(frozen=True)
class CandidatePair:
    """Indices of a candidate pair.

    In linkage mode ``index_a`` points into collection A and
    ``index_b`` into collection B; in self-join (dedup) mode both point
    into the single collection and ``index_a < index_b``.
    """

    index_a: int
    index_b: int


_WORD = re.compile(r"[a-z0-9]+")


def _blob(record, attributes: list[str] | None) -> str:
    """Serialized text of a record; tolerates plain mappings too."""
    if isinstance(record, Record):
        return record.text_blob(attributes)
    attrs = attributes if attributes is not None else list(record)
    return " ".join(v for v in (record.get(a, "") for a in attrs) if v)


class Blocker:
    """Candidate-generation protocol shared by every blocker.

    Subclasses implement :meth:`_iter_pairs`, a generator over
    :class:`CandidatePair` for either *linkage* (two collections) or
    *self-join* (``records_b is None``; emits ``index_a < index_b``
    within the one collection).  The public surface is uniform:

    * :meth:`iter_candidates` — streaming emission in bounded batches,
      the form the dedupe pipeline consumes: at no point does a blocker
      (or its caller) hold the |A| x |B| cross product;
    * :meth:`candidates` — the convenience list form for small inputs
      and the evaluation helpers.
    """

    def _iter_pairs(self, records_a: list, records_b: list | None
                    ) -> Iterator[CandidatePair]:
        raise NotImplementedError

    def iter_candidates(self, records_a: Iterable,
                        records_b: Iterable | None = None,
                        batch_size: int = 2048
                        ) -> Iterator[list[CandidatePair]]:
        """Yield candidate pairs in lists of at most ``batch_size``.

        ``records_b=None`` selects self-join (dedup) mode.  Streaming:
        memory tracks the index structures and one emitted batch, never
        the cross product.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        records_a = list(records_a)
        records_b = None if records_b is None else list(records_b)
        batch: list[CandidatePair] = []
        for pair in self._iter_pairs(records_a, records_b):
            batch.append(pair)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def candidates(self, records_a: Iterable,
                   records_b: Iterable | None = None) -> list[CandidatePair]:
        """All candidate pairs as one list (linkage or self-join)."""
        return [pair
                for chunk in self.iter_candidates(records_a, records_b)
                for pair in chunk]


class TokenBlocker(Blocker):
    """Inverted-index blocking: records sharing >= ``min_shared`` tokens
    (after a document-frequency cut) become candidates.

    Parameters
    ----------
    attributes:
        Attributes whose values are tokenized into blocking keys; None
        uses every attribute.
    max_token_frequency:
        Tokens appearing in more than this fraction of records on either
        side are ignored (they would pair everything with everything).
    min_shared:
        Minimum number of shared surviving tokens for a candidate.
    """

    def __init__(self, attributes: list[str] | None = None,
                 max_token_frequency: float = 0.2,
                 min_shared: int = 1):
        if not 0.0 < max_token_frequency <= 1.0:
            raise ValueError("max_token_frequency must be in (0, 1]")
        if min_shared < 1:
            raise ValueError("min_shared must be >= 1")
        self.attributes = attributes
        self.max_token_frequency = max_token_frequency
        self.min_shared = min_shared

    def _tokens(self, record) -> set[str]:
        return set(_blob(record, self.attributes).lower().split())

    def _iter_pairs(self, records_a, records_b) -> Iterator[CandidatePair]:
        if records_b is None:
            yield from self._iter_self(records_a)
            return
        sets_a = [self._tokens(r) for r in records_a]
        sets_b = [self._tokens(r) for r in records_b]
        postings: dict[str, list[int]] = defaultdict(list)
        for j, tokens in enumerate(sets_b):
            for token in tokens:
                postings[token].append(j)
        limit_a = self.max_token_frequency * max(len(records_a), 1)
        limit_b = self.max_token_frequency * max(len(records_b), 1)
        frequency_a: dict[str, int] = defaultdict(int)
        for tokens in sets_a:
            for token in tokens:
                frequency_a[token] += 1
        for i, tokens in enumerate(sets_a):
            shared: dict[int, int] = defaultdict(int)
            for token in tokens:
                if frequency_a[token] > limit_a:
                    continue
                hits = postings.get(token, ())
                if len(hits) > limit_b:
                    continue
                for j in hits:
                    shared[j] += 1
            for j in sorted(shared):
                if shared[j] >= self.min_shared:
                    yield CandidatePair(i, j)

    def _iter_self(self, records) -> Iterator[CandidatePair]:
        sets = [self._tokens(r) for r in records]
        postings: dict[str, list[int]] = defaultdict(list)
        for i, tokens in enumerate(sets):
            for token in tokens:
                postings[token].append(i)
        limit = self.max_token_frequency * max(len(records), 1)
        for i, tokens in enumerate(sets):
            shared: dict[int, int] = defaultdict(int)
            for token in tokens:
                hits = postings[token]
                if len(hits) > limit:
                    continue
                for j in hits:
                    if j > i:
                        shared[j] += 1
            for j in sorted(shared):
                if shared[j] >= self.min_shared:
                    yield CandidatePair(i, j)


class SortedNeighborhoodBlocker(Blocker):
    """Sort both collections by a key, slide a window over the merge.

    Records whose keys land within ``window`` positions of each other in
    the merged ordering become candidates.  A record missing the
    ``key_attribute`` sorts under the empty key (it is never an error:
    real catalogs have holes).
    """

    def __init__(self, key_attribute: str, window: int = 5,
                 key_length: int = 8):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.key_attribute = key_attribute
        self.window = window
        self.key_length = key_length

    def _key(self, record) -> str:
        try:
            value = record[self.key_attribute]
        except KeyError:  # plain mappings without the attribute
            value = ""
        return (value or "").lower()[: self.key_length]

    def _iter_pairs(self, records_a, records_b) -> Iterator[CandidatePair]:
        if records_b is None:
            ordered = sorted(range(len(records_a)),
                             key=lambda i: self._key(records_a[i]))
            seen: set[tuple[int, int]] = set()
            for position, index in enumerate(ordered):
                lo = max(0, position - self.window)
                for other in ordered[lo:position]:
                    pair = (min(index, other), max(index, other))
                    if pair not in seen:
                        seen.add(pair)
                        yield CandidatePair(*pair)
            return
        merged = ([(self._key(r), 0, i) for i, r in enumerate(records_a)]
                  + [(self._key(r), 1, j) for j, r in enumerate(records_b)])
        merged.sort(key=lambda item: item[0])
        seen = set()
        for position, (_, source, index) in enumerate(merged):
            lo = max(0, position - self.window)
            for _, other_source, other_index in merged[lo:position]:
                if source == other_source:
                    continue
                pair = ((index, other_index) if source == 0
                        else (other_index, index))
                if pair not in seen:
                    seen.add(pair)
                    yield CandidatePair(*pair)


class TfIdfBlocker(Blocker):
    """Sparse cosine blocking over token TF-IDF vectors with a top-k cut.

    Each record becomes an L2-normalized TF-IDF vector over its
    alphanumeric tokens; similarities are accumulated through an
    inverted index (only records sharing at least one token are ever
    scored), and each record keeps its ``top_k`` most similar
    neighbors at or above ``threshold``.  Ties at the k-th score are
    all kept, which makes the candidate *set* invariant under record
    permutation.

    Parameters
    ----------
    attributes:
        Attributes to tokenize (None = all).
    top_k:
        Neighbors kept per record (ties at the cut included).
    threshold:
        Minimum cosine similarity for a candidate.
    """

    #: Relative tolerance when comparing scores at the top-k boundary —
    #: float accumulation order varies with input order, so an exact
    #: comparison would break permutation invariance on ties.
    _TIE_EPS = 1e-9

    def __init__(self, attributes: list[str] | None = None,
                 top_k: int = 10, threshold: float = 0.1):
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.attributes = attributes
        self.top_k = top_k
        self.threshold = threshold

    def _counts(self, record) -> dict[str, int]:
        counts: dict[str, int] = defaultdict(int)
        for token in _WORD.findall(_blob(record, self.attributes).lower()):
            counts[token] += 1
        return counts

    @staticmethod
    def _vectors(counts: list[dict[str, int]]) -> list[dict[str, float]]:
        """L2-normalized TF-IDF vectors with a smoothed idf."""
        df: dict[str, int] = defaultdict(int)
        for record_counts in counts:
            for token in record_counts:
                df[token] += 1
        n = len(counts)
        idf = {token: log((1.0 + n) / (1.0 + freq)) + 1.0
               for token, freq in df.items()}
        vectors: list[dict[str, float]] = []
        for record_counts in counts:
            weights = {token: tf * idf[token]
                       for token, tf in record_counts.items()}
            norm = sum(w * w for w in weights.values()) ** 0.5
            if norm > 0.0:
                weights = {t: w / norm for t, w in weights.items()}
            vectors.append(weights)
        return vectors

    def _top(self, scores: dict[int, float]) -> list[int]:
        """Indices surviving the top-k-with-ties cut, ascending."""
        kept = [(j, s) for j, s in scores.items() if s >= self.threshold]
        if not kept:
            return []
        if len(kept) > self.top_k:
            ranked = sorted(s for _, s in kept)
            floor = ranked[-self.top_k] - self._TIE_EPS
            kept = [(j, s) for j, s in kept if s >= floor]
        return sorted(j for j, _ in kept)

    def _iter_pairs(self, records_a, records_b) -> Iterator[CandidatePair]:
        self_join = records_b is None
        corpus = records_a if self_join else records_b
        counts_b = [self._counts(r) for r in corpus]
        vectors_b = self._vectors(counts_b)
        postings: dict[str, list[tuple[int, float]]] = defaultdict(list)
        for j, vector in enumerate(vectors_b):
            for token, weight in vector.items():
                postings[token].append((j, weight))
        if self_join:
            vectors_a = vectors_b
        else:
            vectors_a = self._vectors([self._counts(r) for r in records_a])
        seen: set[tuple[int, int]] = set()
        for i, vector in enumerate(vectors_a):
            scores: dict[int, float] = defaultdict(float)
            for token, weight in vector.items():
                for j, weight_b in postings.get(token, ()):
                    if not self_join or j != i:
                        scores[j] += weight * weight_b
            for j in self._top(scores):
                if not self_join:
                    yield CandidatePair(i, j)
                    continue
                pair = (min(i, j), max(i, j))
                if pair not in seen:
                    seen.add(pair)
                    yield CandidatePair(*pair)


class MinHashLSHBlocker(Blocker):
    """Banded MinHash locality-sensitive hashing over seeded shingles.

    Every record is shingled (character ``shingle_size``-grams of its
    normalized text by default, or token n-grams with
    ``shingle_mode="token"``), each shingle is hashed with a stable
     64-bit digest, and ``num_permutations`` seeded universal hashes
    produce the MinHash signature.  Signatures are cut into
    ``num_permutations / band_size`` bands of ``band_size`` rows; two
    records become a candidate when any band collides exactly.  The
    collision probability for Jaccard similarity ``s`` follows the
    classic S-curve ``1 - (1 - s^rows)^bands``
    (:meth:`collision_probability`), so ``(bands, rows)`` tunes the
    recall/candidate-volume trade-off analytically.

    Records with no shingles (all-empty text) are never emitted as
    candidates — an empty record matches nothing, it does not match
    every other empty record.

    Parameters
    ----------
    num_permutations:
        Signature length; must divide evenly into bands.
    band_size:
        Rows per band (``r`` in the LSH literature).
    seed:
        Seeds the permutation family; same seed, same candidates.
    shingle_size:
        Character n-gram length (or token n-gram length in token mode).
    shingle_mode:
        ``"char"`` (default) or ``"token"``.
    attributes:
        Attributes to shingle (None = all).
    max_bucket_size:
        Band buckets larger than this are skipped instead of emitting
        a quadratic pair blowup (the standard LSH mega-bucket guard).
    """

    def __init__(self, num_permutations: int = 128, band_size: int = 4,
                 seed: int = 0, shingle_size: int = 3,
                 shingle_mode: str = "char",
                 attributes: list[str] | None = None,
                 max_bucket_size: int = 500):
        if num_permutations < 1 or band_size < 1:
            raise ValueError("num_permutations and band_size must be >= 1")
        if num_permutations % band_size:
            raise ValueError(
                f"band_size {band_size} must divide num_permutations "
                f"{num_permutations}")
        if shingle_mode not in ("char", "token"):
            raise ValueError(f"unknown shingle_mode {shingle_mode!r}")
        if shingle_size < 1:
            raise ValueError("shingle_size must be >= 1")
        if max_bucket_size < 2:
            raise ValueError("max_bucket_size must be >= 2")
        self.num_permutations = num_permutations
        self.band_size = band_size
        self.num_bands = num_permutations // band_size
        self.seed = seed
        self.shingle_size = shingle_size
        self.shingle_mode = shingle_mode
        self.attributes = attributes
        self.max_bucket_size = max_bucket_size
        rng = np.random.default_rng(seed)
        # Multiply-add universal hashing on the uint64 ring; odd
        # multipliers keep the map a bijection.
        self._mult = (rng.integers(1, 2 ** 63, size=num_permutations,
                                   dtype=np.uint64) * np.uint64(2)
                      + np.uint64(1))
        self._add = rng.integers(0, 2 ** 63, size=num_permutations,
                                 dtype=np.uint64)

    # -- shingling -----------------------------------------------------------

    def shingles(self, record) -> set[int]:
        """Stable 64-bit shingle hashes of one record."""
        text = " ".join(_WORD.findall(_blob(record,
                                            self.attributes).lower()))
        if not text:
            return set()
        size = self.shingle_size
        if self.shingle_mode == "token":
            tokens = text.split()
            if len(tokens) < size:
                grams = [" ".join(tokens)]
            else:
                grams = [" ".join(tokens[k: k + size])
                         for k in range(len(tokens) - size + 1)]
        else:
            if len(text) < size:
                grams = [text]
            else:
                grams = [text[k: k + size]
                         for k in range(len(text) - size + 1)]
        return {self._digest(gram) for gram in grams}

    @staticmethod
    def _digest(gram: str) -> int:
        # Stable across processes (unlike hash(), which is salted).
        raw = hashlib.blake2b(gram.encode("utf-8"), digest_size=8)
        return int.from_bytes(raw.digest(), "little")

    # -- signatures ----------------------------------------------------------

    def signatures(self, records: Iterable) -> np.ndarray:
        """MinHash signature matrix, shape (n_records, num_permutations).

        Rows for empty-shingle records are all ``uint64`` max (the
        identity of ``min``); :meth:`_iter_pairs` excludes them from
        banding.
        """
        records = list(records)
        sets = [self.shingles(r) for r in records]
        sentinel = np.iinfo(np.uint64).max
        signature = np.full((len(records), self.num_permutations),
                            sentinel, dtype=np.uint64)
        occupied = [i for i, s in enumerate(sets) if s]
        if not occupied:
            return signature
        counts = np.asarray([len(sets[i]) for i in occupied])
        flat = np.fromiter(
            (h for i in occupied for h in sorted(sets[i])),
            dtype=np.uint64, count=int(counts.sum()))
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        rows = np.asarray(occupied)
        for p in range(self.num_permutations):
            hashed = flat * self._mult[p] + self._add[p]
            signature[rows, p] = np.minimum.reduceat(hashed, starts)
        return signature

    @staticmethod
    def estimate_jaccard(signature_a: np.ndarray,
                         signature_b: np.ndarray) -> float:
        """Fraction of agreeing signature components (MinHash estimate)."""
        return float(np.mean(signature_a == signature_b))

    # -- the (b, r) collision curve ------------------------------------------

    def collision_probability(self, jaccard: float) -> float:
        """P(candidate) for a pair at the given Jaccard similarity."""
        if not 0.0 <= jaccard <= 1.0:
            raise ValueError(f"jaccard must be in [0, 1], got {jaccard}")
        return 1.0 - (1.0 - jaccard ** self.band_size) ** self.num_bands

    def jaccard_at(self, probability: float) -> float:
        """Jaccard similarity where the collision curve crosses
        ``probability`` (the inverse of :meth:`collision_probability`)."""
        if not 0.0 < probability < 1.0:
            raise ValueError(
                f"probability must be in (0, 1), got {probability}")
        inner = 1.0 - (1.0 - probability) ** (1.0 / self.num_bands)
        return inner ** (1.0 / self.band_size)

    # -- banding -------------------------------------------------------------

    def _iter_pairs(self, records_a, records_b) -> Iterator[CandidatePair]:
        self_join = records_b is None
        sig_a = self.signatures(records_a)
        occupied_a = ~np.all(
            sig_a == np.iinfo(np.uint64).max, axis=1)
        if self_join:
            sig_b, occupied_b = sig_a, occupied_a
        else:
            sig_b = self.signatures(records_b)
            occupied_b = ~np.all(
                sig_b == np.iinfo(np.uint64).max, axis=1)
        width_b = len(sig_b)
        seen: set[int] = set()
        for band in range(self.num_bands):
            lo = band * self.band_size
            slice_b = sig_b[:, lo: lo + self.band_size]
            buckets: dict[bytes, list[int]] = defaultdict(list)
            for j in range(len(slice_b)):
                if occupied_b[j]:
                    buckets[slice_b[j].tobytes()].append(j)
            if self_join:
                for members in buckets.values():
                    if not 2 <= len(members) <= self.max_bucket_size:
                        continue
                    for a, i in enumerate(members):
                        for j in members[a + 1:]:
                            key = i * width_b + j
                            if key not in seen:
                                seen.add(key)
                                yield CandidatePair(i, j)
                continue
            slice_a = sig_a[:, lo: lo + self.band_size]
            for i in range(len(slice_a)):
                if not occupied_a[i]:
                    continue
                members = buckets.get(slice_a[i].tobytes())
                if members is None or len(members) > self.max_bucket_size:
                    continue
                for j in members:
                    key = i * width_b + j
                    if key not in seen:
                        seen.add(key)
                        yield CandidatePair(i, j)


@dataclass
class BlockingQuality:
    """Standard blocking metrics."""

    pairs_completeness: float   # recall of true matches in candidates
    reduction_ratio: float      # 1 - |candidates| / |cross product|
    num_candidates: int

    def __str__(self) -> str:
        return (f"PC {self.pairs_completeness:.2f}, "
                f"RR {self.reduction_ratio:.2f}, "
                f"{self.num_candidates} candidates")


def evaluate_blocking(candidates: Iterable[CandidatePair],
                      true_matches: set[tuple[int, int]],
                      size_a: int,
                      size_b: int | None = None) -> BlockingQuality:
    """Pairs-completeness and reduction ratio of a candidate set.

    ``size_b=None`` evaluates a self-join candidate set over ``size_a``
    records (cross product ``size_a * (size_a - 1) / 2``).  An empty
    cross product has, by definition, nothing left to prune: the
    reduction ratio is 1.0.  Both metrics are clamped to [0, 1] so
    adversarial inputs (duplicated candidates, inconsistent sizes)
    cannot push them out of range.
    """
    candidate_set = {(c.index_a, c.index_b) for c in candidates}
    found = len(candidate_set & true_matches)
    completeness = found / len(true_matches) if true_matches else 1.0
    cross = (size_a * size_b if size_b is not None
             else size_a * (size_a - 1) // 2)
    reduction = 1.0 - len(candidate_set) / cross if cross else 1.0
    return BlockingQuality(
        pairs_completeness=min(max(completeness, 0.0), 1.0),
        reduction_ratio=min(max(reduction, 0.0), 1.0),
        num_candidates=len(candidate_set),
    )
