"""Train/validation/test splitting.

The paper splits each dataset 3:1:1 (60/20/20), stratified so the match
rate is preserved in every split, and reports all numbers on the test
split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .records import EMDataset

__all__ = ["DatasetSplits", "split_dataset"]


@dataclass
class DatasetSplits:
    train: EMDataset
    validation: EMDataset
    test: EMDataset


def split_dataset(dataset: EMDataset, rng: np.random.Generator,
                  ratios: tuple[float, float, float] = (0.6, 0.2, 0.2)
                  ) -> DatasetSplits:
    """Stratified 3:1:1 split (by match label)."""
    if abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"split ratios must sum to 1: {ratios}")
    labels = np.asarray(dataset.labels())
    train_idx: list[int] = []
    val_idx: list[int] = []
    test_idx: list[int] = []
    for label in (0, 1):
        indices = np.flatnonzero(labels == label)
        rng.shuffle(indices)
        n = len(indices)
        n_train = int(round(n * ratios[0]))
        n_val = int(round(n * ratios[1]))
        train_idx.extend(indices[:n_train])
        val_idx.extend(indices[n_train:n_train + n_val])
        test_idx.extend(indices[n_train + n_val:])
    # Shuffle within each split so batches are not label-sorted.
    for part in (train_idx, val_idx, test_idx):
        rng.shuffle(part)
    return DatasetSplits(
        train=dataset.subset(train_idx, "-train"),
        validation=dataset.subset(val_idx, "-val"),
        test=dataset.subset(test_idx, "-test"),
    )
