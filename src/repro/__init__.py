"""repro - full from-scratch reproduction of "Entity Matching with
Transformer Architectures - A Step Forward in Data Integration"
(Brunner & Stockinger, EDBT 2020).

Layers (bottom-up):

* :mod:`repro.nn` - numpy autodiff + layers/optimizers (the PyTorch
  stand-in);
* :mod:`repro.tokenizers` - WordPiece, byte-level BPE, unigram;
* :mod:`repro.models` - BERT, RoBERTa, DistilBERT, XLNet;
* :mod:`repro.pretraining` - corpora, MLM/NSP/PLM objectives,
  distillation, and the cached model zoo;
* :mod:`repro.data` - the five EM benchmarks as seeded generators, dirty
  transform, splits;
* :mod:`repro.matching` - the paper's contribution: pair serialization,
  fine-tuning, :class:`repro.matching.EntityMatcher`;
* :mod:`repro.baselines` - Magellan and DeepMatcher;
* :mod:`repro.evaluation` - tables, figures, convergence, ablations;
* :mod:`repro.obs` - metrics registry, tracing spans, telemetry events,
  training callbacks, op-level profiler.

Quickstart::

    from repro.matching import EntityMatcher
    from repro.data import load_benchmark, split_dataset
    from repro.utils import child_rng

    data = load_benchmark("walmart-amazon", seed=7, scale=0.1)
    splits = split_dataset(data, child_rng(7, "split"))
    matcher = EntityMatcher("roberta")
    matcher.fit(splits.train, splits.test)
    print(matcher.evaluate(splits.test))
"""

__version__ = "1.0.0"

from . import (baselines, data, evaluation, matching, models, nn, obs,
               pretraining, tokenizers, utils)

__all__ = ["nn", "tokenizers", "models", "pretraining", "data", "matching",
           "baselines", "evaluation", "obs", "utils", "__version__"]
