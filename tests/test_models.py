"""The four architectures: configs, shapes, masking, match features,
permutation LM machinery, classification heads."""

import numpy as np
import pytest

from repro.models import (ARCHITECTURES, BertModel, DistilBertModel,
                          RobertaModel, SequenceClassifier,
                          TransformerConfig, XLNetModel, build_backbone,
                          build_pretraining_head, default_config,
                          permutation_masks, sinusoidal_positions)
from repro.models.transformer import (cross_match_features,
                                      lexical_match_scores)
from repro.nn import Tensor, cross_entropy, no_grad


def _tiny(arch, **kw):
    defaults = dict(vocab_size=60, d_model=32, num_layers=2, num_heads=2,
                    max_position=32)
    defaults.update(kw)
    return default_config(arch, **defaults)


class TestConfig:
    def test_all_architectures_buildable(self, rng):
        for arch in ARCHITECTURES:
            backbone = build_backbone(_tiny(arch), rng)
            assert backbone.num_parameters() > 0

    def test_distilbert_halves_layers(self):
        config = _tiny("distilbert", num_layers=4)
        assert config.num_layers == 2
        assert config.type_vocab_size == 1

    def test_xlnet_three_segments(self):
        assert _tiny("xlnet").type_vocab_size == 3

    def test_invalid_arch_raises(self):
        with pytest.raises(ValueError):
            TransformerConfig(arch="gpt")

    def test_dmodel_divisible_by_heads(self):
        with pytest.raises(ValueError):
            TransformerConfig(d_model=30, num_heads=4)

    def test_dict_roundtrip(self):
        config = _tiny("bert")
        clone = TransformerConfig.from_dict(config.to_dict())
        assert clone == config

    def test_wrong_arch_class_pairing_raises(self, rng):
        with pytest.raises(ValueError):
            RobertaModel(_tiny("bert"), rng)
        with pytest.raises(ValueError):
            DistilBertModel(_tiny("bert"), rng)
        with pytest.raises(ValueError):
            XLNetModel(_tiny("bert"), rng)


class TestSinusoidal:
    def test_shape_and_range(self):
        table = sinusoidal_positions(10, 16)
        assert table.shape == (10, 16)
        assert np.abs(table).max() <= 1.0

    def test_first_row_alternates(self):
        table = sinusoidal_positions(4, 8)
        assert np.allclose(table[0, 0::2], 0.0)
        assert np.allclose(table[0, 1::2], 1.0)


class TestForwardShapes:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_hidden_shape(self, rng, arch):
        backbone = build_backbone(_tiny(arch), rng)
        ids = rng.integers(5, 60, size=(2, 12))
        segments = np.zeros((2, 12), dtype=int)
        segments[:, 6:] = 1
        hidden = backbone(ids, segment_ids=segments,
                          pad_mask=np.zeros((2, 12), bool))
        assert hidden.shape == (2, 12, 32)

    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_backward_reaches_embeddings(self, rng, arch):
        backbone = build_backbone(_tiny(arch), rng)
        ids = rng.integers(5, 60, size=(2, 8))
        hidden = backbone(ids, segment_ids=np.zeros((2, 8), int))
        (hidden ** 2).sum().backward()
        token_param = (backbone.embeddings.token.weight
                       if hasattr(backbone, "embeddings")
                       else backbone.token.weight)
        assert token_param.grad is not None

    def test_sequence_too_long_raises(self, rng):
        backbone = build_backbone(_tiny("bert"), rng)
        with pytest.raises(ValueError):
            backbone(rng.integers(5, 60, size=(1, 40)))

    def test_padding_does_not_leak(self, rng):
        config = _tiny("bert", dropout=0.0)
        backbone = build_backbone(config, rng)
        backbone.eval()
        ids = rng.integers(5, 60, size=(1, 8))
        pad = np.zeros((1, 8), bool)
        pad[0, -2:] = True
        with no_grad():
            base = backbone(ids, pad_mask=pad).numpy()
            ids2 = ids.copy()
            ids2[0, -2:] = 7  # change padded content
            changed = backbone(ids2, pad_mask=pad).numpy()
        assert np.allclose(base[0, :6], changed[0, :6], atol=1e-4)


class TestMatchFeatures:
    def test_lexical_match_scores_diagonal_zero(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = rng.integers(2, 20, size=(1, 6))
        scores = lexical_match_scores(table, ids, {0})
        assert np.allclose(np.diagonal(scores[0]), 0.0)

    def test_lexical_match_same_token_is_one(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = np.array([[5, 7, 5, 9]])
        scores = lexical_match_scores(table, ids, set())
        assert abs(scores[0, 0, 2] - 1.0) < 1e-5

    def test_special_rows_zeroed(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = np.array([[0, 5, 5, 9]])
        scores = lexical_match_scores(table, ids, {0})
        assert np.allclose(scores[0, 0, :], 0.0)
        assert np.allclose(scores[0, :, 0], 0.0)

    def test_cross_match_exact_channel(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = np.array([[5, 6, 5, 9]])
        segments = np.array([[0, 0, 1, 1]])
        feats = cross_match_features(table, ids, segments, set())
        assert feats.shape == (1, 4, 4)
        assert feats[0, 0, 0] == 1.0   # token 5 appears in segment B
        assert feats[0, 1, 0] == 0.0   # token 6 does not
        assert feats[0, 2, 0] == 1.0   # symmetric

    def test_cross_match_bigram_channel(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = np.array([[5, 6, 9, 5, 6, 8]])
        segments = np.array([[0, 0, 0, 1, 1, 1]])
        feats = cross_match_features(table, ids, segments, set())
        assert feats[0, 0, 1] == 1.0   # (5,6) bigram repeats cross-segment
        assert feats[0, 2, 1] == 0.0   # (9,...) does not

    def test_cross_match_specials_zero(self, rng):
        table = rng.normal(size=(20, 8)).astype(np.float32)
        ids = np.array([[0, 5, 5, 9]])
        segments = np.array([[0, 0, 1, 1]])
        feats = cross_match_features(table, ids, segments, {0})
        assert np.allclose(feats[0, 0], 0.0)

    def test_match_bias_off_uses_no_extra_params(self, rng):
        config_on = _tiny("bert")
        config_off = _tiny("bert")
        config_off.match_bias = False
        n_on = build_backbone(config_on, rng).num_parameters()
        n_off = build_backbone(config_off, rng).num_parameters()
        assert n_on > n_off


class TestXLNet:
    def test_permutation_masks_semantics(self):
        content, query = permutation_masks(np.array([2, 0, 1]))
        # Position 2 is first in the order: sees nothing but itself.
        assert content[2].tolist() == [True, True, False]
        assert query[2].tolist() == [True, True, True]
        # Position 1 is last: content sees everything.
        assert content[1].tolist() == [False, False, False]
        # Query stream never sees the position itself.
        assert all(query[i, i] for i in range(3))

    def test_two_stream_shapes_and_grads(self, rng):
        backbone = build_backbone(_tiny("xlnet"), rng)
        ids = rng.integers(5, 60, size=(2, 10))
        order = np.random.default_rng(1).permutation(10)
        g = backbone.forward_permutation(ids, order)
        assert g.shape == (2, 10, 32)
        (g ** 2).sum().backward()
        assert backbone.query_seed.grad is not None

    def test_query_stream_blind_to_own_token(self, rng):
        config = _tiny("xlnet", dropout=0.0)
        backbone = build_backbone(config, rng)
        backbone.eval()
        # match bias would leak token identity into g via the bias matrix;
        # the permutation path must therefore be evaluated without it —
        # forward_permutation does not use match features at all.
        ids = rng.integers(5, 60, size=(1, 6))
        order = np.arange(6)  # left-to-right factorization
        with no_grad():
            g1 = backbone.forward_permutation(ids, order).numpy()
            ids2 = ids.copy()
            ids2[0, 5] = (ids2[0, 5] + 1) % 55 + 5
            g2 = backbone.forward_permutation(ids2, order).numpy()
        # position 5 predicts itself: its g must not depend on token 5
        assert np.allclose(g1[0, 5], g2[0, 5], atol=1e-4)

    def test_cls_at_end_pooling(self, rng):
        backbone = build_backbone(_tiny("xlnet"), rng)
        ids = rng.integers(5, 60, size=(2, 8))
        hidden = backbone(ids, segment_ids=np.zeros((2, 8), int))
        pooled = backbone.pooled_output(hidden, cls_index=7)
        assert pooled.shape == (2, 32)


class TestHeads:
    @pytest.mark.parametrize("arch", ARCHITECTURES)
    def test_classifier_trains_one_step(self, rng, arch):
        config = _tiny(arch)
        classifier = SequenceClassifier(build_backbone(config, rng),
                                        config, rng)
        ids = rng.integers(5, 60, size=(4, 10))
        logits = classifier(ids, segment_ids=np.zeros((4, 10), int),
                            pad_mask=np.zeros((4, 10), bool))
        assert logits.shape == (4, 2)
        cross_entropy(logits, np.array([0, 1, 0, 1])).backward()
        assert classifier.output_layer.weight.grad is not None

    def test_predict_proba_sums_to_one(self, rng):
        config = _tiny("bert")
        classifier = SequenceClassifier(build_backbone(config, rng),
                                        config, rng)
        classifier.eval()
        probs = classifier.predict_proba(rng.integers(5, 60, size=(3, 8)))
        assert np.allclose(probs.sum(axis=-1), 1.0, atol=1e-5)

    def test_pretraining_heads(self, rng):
        for arch in ARCHITECTURES:
            config = _tiny(arch)
            head = build_pretraining_head(config, rng)
            hidden = Tensor(rng.normal(size=(2, 6, 32)).astype(np.float32))
            logits = head.mlm_logits(hidden)
            assert logits.shape == (2, 6, 60)

    def test_nsp_head_only_bert(self, rng):
        bert_head = build_pretraining_head(_tiny("bert"), rng)
        pooled = Tensor(rng.normal(size=(2, 32)).astype(np.float32))
        assert bert_head.nsp_logits(pooled).shape == (2, 2)
        roberta_head = build_pretraining_head(_tiny("roberta"), rng)
        with pytest.raises(RuntimeError):
            roberta_head.nsp_logits(pooled)


class TestBackboneParity:
    def test_roberta_is_bert_architecture(self, rng):
        bert = BertModel(_tiny("bert"), rng)
        roberta = RobertaModel(_tiny("roberta"), rng)
        bert_names = {name.split(".", 1)[-1]
                      for name, _ in bert.named_parameters()}
        roberta_names = {name.split(".", 1)[-1]
                         for name, _ in roberta.named_parameters()}
        assert bert_names == roberta_names

    def test_distilbert_smaller_than_bert(self, rng):
        bert = build_backbone(_tiny("bert", num_layers=4), rng)
        distil = build_backbone(_tiny("distilbert", num_layers=4), rng)
        assert distil.num_parameters() < bert.num_parameters()

    def test_distilbert_has_no_pooler(self, rng):
        distil = build_backbone(_tiny("distilbert"), rng)
        assert distil.pooler is None
