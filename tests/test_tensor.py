"""Autodiff core: forward values, numerical gradient checks, tape rules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, is_grad_enabled, no_grad

from conftest import numerical_gradient


def _check_grad(build, *arrays, tol=1e-5):
    """build(*tensors) -> scalar Tensor; verifies each array's gradient."""
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = build(*tensors)
    out.backward()
    for array, tensor in zip(arrays, tensors):
        def f(array=array):
            detached = [Tensor(a) for a in arrays]
            return float(build(*detached).data)
        num = numerical_gradient(f, array)
        assert tensor.grad is not None
        assert np.abs(num - tensor.grad).max() < tol


class TestArithmetic:
    def test_add_broadcast_grad(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4,))
        _check_grad(lambda x, y: (x + y).sum(), a, b)

    def test_mul_grad(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        _check_grad(lambda x, y: (x * y).sum(), a, b)

    def test_div_grad(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3)) + 3.0
        _check_grad(lambda x, y: (x / y).sum(), a, b)

    def test_scalar_ops_preserve_dtype(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        for expr in (x + 1.0, x - 1.0, 1.0 - x, x * 2.0, x / 2.0, 2.0 / x,
                     x + np.float64(1.0), x * np.float64(2.0)):
            assert expr.data.dtype == np.float32

    def test_rsub_value_and_grad(self, rng):
        a = rng.normal(size=(3,))
        _check_grad(lambda x: (5.0 - x).sum() * 2.0, a)
        assert np.allclose((5.0 - Tensor(a)).data, 5.0 - a)

    def test_rtruediv_grad(self, rng):
        a = rng.normal(size=(3,)) + 4.0
        _check_grad(lambda x: (2.0 / x).sum(), a)

    def test_pow_grad(self, rng):
        a = np.abs(rng.normal(size=(3,))) + 0.5
        _check_grad(lambda x: (x ** 3).sum(), a)

    def test_matmul_grad(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(4, 2))
        _check_grad(lambda x, y: (x @ y).sum(), a, b)

    def test_batched_matmul_grad(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(2, 4, 5))
        _check_grad(lambda x, y: ((x @ y) ** 2).sum(), a, b)

    def test_matmul_broadcast_grad(self, rng):
        a = rng.normal(size=(2, 3, 4))
        b = rng.normal(size=(4, 5))
        _check_grad(lambda x, y: (x @ y).sum(), a, b)


class TestElementwise:
    @pytest.mark.parametrize("name", ["exp", "tanh", "sigmoid", "relu",
                                      "gelu"])
    def test_unary_grads(self, rng, name):
        a = rng.normal(size=(3, 3))
        _check_grad(lambda x: getattr(x, name)().sum(), a)

    def test_log_grad(self, rng):
        a = np.abs(rng.normal(size=(4,))) + 0.5
        _check_grad(lambda x: x.log().sum(), a)

    def test_sqrt_value(self):
        assert np.allclose(Tensor(np.array([4.0, 9.0])).sqrt().data,
                           [2.0, 3.0])

    def test_gelu_matches_reference(self):
        x = np.linspace(-3, 3, 13)
        out = Tensor(x).gelu().data
        ref = 0.5 * x * (1 + np.tanh(np.sqrt(2 / np.pi)
                                     * (x + 0.044715 * x ** 3)))
        assert np.allclose(out, ref)


class TestReductions:
    def test_sum_axis_grad(self, rng):
        a = rng.normal(size=(3, 4))
        _check_grad(lambda x: (x.sum(axis=1) ** 2).sum(), a)

    def test_sum_keepdims(self, rng):
        a = rng.normal(size=(2, 3))
        out = Tensor(a).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean_grad(self, rng):
        a = rng.normal(size=(3, 4))
        _check_grad(lambda x: (x.mean(axis=0) ** 2).sum(), a)

    def test_max_grad(self, rng):
        a = rng.normal(size=(3, 4))
        _check_grad(lambda x: x.max(axis=1).sum(), a)

    def test_max_ties_split_gradient(self):
        a = np.array([[1.0, 1.0, 0.0]])
        t = Tensor(a, requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.5, 0.5, 0.0]])


class TestShapes:
    def test_reshape_grad(self, rng):
        a = rng.normal(size=(2, 6))
        _check_grad(lambda x: (x.reshape(3, 4) ** 2).sum(), a)

    def test_transpose_grad(self, rng):
        a = rng.normal(size=(2, 3, 4))
        _check_grad(lambda x: (x.transpose(2, 0, 1) ** 2).sum(), a)

    def test_swapaxes(self, rng):
        a = rng.normal(size=(2, 3, 4))
        assert Tensor(a).swapaxes(1, 2).shape == (2, 4, 3)

    def test_getitem_grad(self, rng):
        a = rng.normal(size=(4, 5))
        _check_grad(lambda x: (x[1:3, ::2] ** 2).sum(), a)

    def test_getitem_fancy_grad(self, rng):
        a = rng.normal(size=(5, 3))
        idx = np.array([0, 2, 2, 4])
        _check_grad(lambda x: (x[idx] ** 2).sum(), a)

    def test_concat_grad(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 2))
        _check_grad(lambda x, y: (Tensor.concat([x, y], axis=1) ** 2).sum(),
                    a, b)

    def test_stack_grad(self, rng):
        a = rng.normal(size=(2, 3))
        b = rng.normal(size=(2, 3))
        _check_grad(lambda x, y: (Tensor.stack([x, y], axis=1) ** 2).sum(),
                    a, b)


class TestStructured:
    def test_embedding_grad_accumulates_duplicates(self, rng):
        table = rng.normal(size=(6, 4))
        ids = np.array([[1, 1, 3]])
        t = Tensor(table, requires_grad=True)
        t.embedding(ids).sum().backward()
        assert np.allclose(t.grad[1], 2.0)
        assert np.allclose(t.grad[3], 1.0)
        assert np.allclose(t.grad[0], 0.0)

    def test_masked_fill(self, rng):
        a = rng.normal(size=(2, 3))
        mask = np.array([[True, False, False], [False, True, False]])
        t = Tensor(a, requires_grad=True)
        out = t.masked_fill(mask, -9.0)
        assert np.all(out.data[mask] == -9.0)
        out.sum().backward()
        assert np.all(t.grad[mask] == 0.0)
        assert np.all(t.grad[~mask] == 1.0)

    def test_softmax_rows_sum_to_one(self, rng):
        out = Tensor(rng.normal(size=(4, 7))).softmax(axis=-1)
        assert np.allclose(out.data.sum(axis=-1), 1.0)

    def test_softmax_grad(self, rng):
        a = rng.normal(size=(3, 5))
        _check_grad(lambda x: (x.softmax(axis=-1) ** 2).sum(), a)

    def test_log_softmax_grad(self, rng):
        a = rng.normal(size=(3, 5))
        _check_grad(lambda x: (x.log_softmax(axis=-1) ** 2).sum(), a)

    def test_log_softmax_is_log_of_softmax(self, rng):
        a = rng.normal(size=(2, 4))
        assert np.allclose(Tensor(a).log_softmax().data,
                           np.log(Tensor(a).softmax().data))

    def test_layer_norm_grad(self, rng):
        a = rng.normal(size=(2, 3, 5))
        w = rng.normal(size=(5,))
        b = rng.normal(size=(5,))
        _check_grad(lambda x, wt, bt: (x.layer_norm(wt, bt) ** 2).sum(),
                    a, w, b)

    def test_layer_norm_statistics(self, rng):
        a = rng.normal(size=(4, 8))
        out = Tensor(a).layer_norm(Tensor(np.ones(8)), Tensor(np.zeros(8)))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.var(axis=-1), 1.0, atol=1e-3)

    def test_dropout_inverted_scaling(self, rng):
        t = Tensor(np.ones((1000,)), requires_grad=True)
        out = t.dropout(0.5, rng)
        kept = out.data != 0
        assert np.allclose(out.data[kept], 2.0)
        assert 0.3 < kept.mean() < 0.7


class TestTape:
    def test_no_grad_blocks_tape(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with no_grad():
            out = t * 2.0
            assert not out.requires_grad
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_as_decorator(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)

        @no_grad()
        def infer(x):
            assert not is_grad_enabled()
            return x * 2.0

        out = infer(t)
        assert not out.requires_grad
        assert is_grad_enabled()

    def test_no_grad_nesting_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            # Leaving the inner block restores the *outer* state (still
            # disabled), not the global default.
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_no_grad_decorator_inside_context(self):
        @no_grad()
        def infer():
            return is_grad_enabled()

        with no_grad():
            assert infer() is False
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_backward_requires_scalar(self, rng):
        t = Tensor(rng.normal(size=(3,)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_detached_raises(self, rng):
        t = Tensor(rng.normal(size=(3,)))
        with pytest.raises(RuntimeError):
            t.sum().backward()

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (t * 2.0).sum().backward()
        (t * 2.0).sum().backward()
        assert np.allclose(t.grad, [4.0, 4.0])

    def test_diamond_graph_grad(self, rng):
        a = rng.normal(size=(3,))
        _check_grad(lambda x: ((x * 2.0) + (x * 3.0)).sum(), a)

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        out = t.detach() * 3.0
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None


@given(st.lists(st.floats(-5, 5), min_size=1, max_size=12))
@settings(max_examples=30, deadline=None)
def test_softmax_invariant_to_shift(values):
    x = np.array(values)
    a = Tensor(x).softmax().data
    b = Tensor(x + 100.0).softmax().data
    assert np.allclose(a, b, atol=1e-6)


@given(st.integers(1, 5), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_matmul_shape_property(n, m):
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(n, 3)))
    b = Tensor(rng.normal(size=(3, m)))
    assert (a @ b).shape == (n, m)


@given(st.lists(st.floats(-3, 3), min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_layer_norm_shift_invariance(values):
    x = np.array(values)[None, :]
    w = Tensor(np.ones(len(values)))
    b = Tensor(np.zeros(len(values)))
    a = Tensor(x).layer_norm(w, b).data
    shifted = Tensor(x + 7.0).layer_norm(w, b).data
    assert np.allclose(a, shifted, atol=1e-4)
