"""End-to-end integration: the full pipeline at miniature scale.

These tests exercise the complete reproduction path — generate a
benchmark, split it, load a (tiny) pre-trained checkpoint, fine-tune,
evaluate, run both baselines — the same sequence the benchmark harness
performs at larger scale.
"""

import numpy as np
import pytest

from repro.baselines import DeepMatcher, DeepMatcherConfig, MagellanMatcher
from repro.data import load_benchmark, save_dataset, load_dataset, \
    split_dataset
from repro.matching import EntityMatcher, FineTuneConfig, fine_tune
from repro.evaluation import ablate_pretraining, ExperimentScale
from repro.utils import child_rng


@pytest.fixture(scope="module")
def splits():
    data = load_benchmark("dblp-acm", seed=11, scale=0.05)
    return split_dataset(data, child_rng(11, "split-int"))


class TestEndToEnd:
    def test_transformer_beats_zero_shot(self, tiny_bert, splits):
        config = FineTuneConfig(epochs=3, max_length_cap=32)
        result = fine_tune(tiny_bert, splits.train, splits.test, config,
                           seed=2)
        assert result.best_f1 >= result.history[0].f1

    def test_all_three_systems_produce_comparable_metrics(
            self, tiny_bert, splits):
        matcher = EntityMatcher(
            "bert", pretrained=tiny_bert,
            finetune_config=FineTuneConfig(epochs=2, max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        transformer_f1 = matcher.evaluate(splits.test).f1

        magellan_f1 = MagellanMatcher(seed=0).run(
            splits.train, splits.validation, splits.test).test_metrics.f1

        deepmatcher_f1 = DeepMatcher(
            DeepMatcherConfig(epochs=2, variants=("sif",),
                              use_pretrained_embeddings=False),
            seed=0).run(splits.train, splits.validation,
                        splits.test).test_metrics.f1

        for value in (transformer_f1, magellan_f1, deepmatcher_f1):
            assert 0.0 <= value <= 1.0

    def test_dataset_roundtrip_through_disk(self, tmp_path, splits):
        save_dataset(splits.test, tmp_path / "test.csv")
        loaded = load_dataset(tmp_path / "test.csv")
        assert loaded.labels() == splits.test.labels()

    def test_pretraining_ablation_runs(self, tiny_settings, tiny_zoo_dir):
        scale = ExperimentScale(dataset_scale=0.03, epochs=1, runs=1,
                                max_length_cap=32,
                                zoo_settings=tiny_settings,
                                zoo_dir=str(tiny_zoo_dir))
        result = ablate_pretraining("bert", "dblp-acm", scale)
        assert result.variant_a == "pretrained"
        assert 0.0 <= result.f1_a <= 100.0
        assert 0.0 <= result.f1_b <= 100.0
        assert "pretraining" in result.rendered()

    def test_same_seed_full_path_reproducible(self, tiny_bert, splits):
        config = FineTuneConfig(epochs=1, max_length_cap=32)
        a = fine_tune(tiny_bert, splits.train, splits.test, config, seed=9)
        b = fine_tune(tiny_bert, splits.train, splits.test, config, seed=9)
        assert a.f1_curve() == b.f1_curve()

    def test_match_bias_off_still_trains(self, tiny_settings, tmp_path,
                                         splits):
        from dataclasses import replace as dc_replace
        from repro.pretraining import get_pretrained, ZooSettings
        # vanilla (no lexical prior) variant must run end to end too
        settings = ZooSettings(**{**tiny_settings.__dict__})
        pm = get_pretrained("bert", seed=0, settings=settings,
                            zoo_dir=tmp_path)
        pm.config.match_bias = False
        pm2 = get_pretrained("bert", seed=0, settings=settings,
                             zoo_dir=tmp_path)
        result = fine_tune(pm2, splits.train, splits.test,
                           FineTuneConfig(epochs=1, max_length_cap=32),
                           seed=0)
        assert len(result.history) == 2
