"""Baselines: similarity functions, Magellan, DeepMatcher, SGNS."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (DeepMatcher, DeepMatcherConfig, MagellanMatcher,
                             similarity as sim)
from repro.baselines.deepmatcher import (DeepMatcherModel, VARIANTS,
                                         WordVocab, train_sgns)
from repro.baselines.magellan import (DecisionTree, FeatureGenerator,
                                      LogisticRegression, RandomForest)
from repro.data import load_benchmark, split_dataset
from repro.utils import child_rng


class TestSimilarity:
    def test_levenshtein_known(self):
        assert sim.levenshtein_distance("kitten", "sitting") == 3
        assert sim.levenshtein_distance("", "abc") == 3
        assert sim.levenshtein_distance("same", "same") == 0

    def test_levenshtein_similarity_bounds(self):
        assert sim.levenshtein_similarity("abc", "abc") == 1.0
        assert sim.levenshtein_similarity("abc", "xyz") == 0.0

    def test_jaro_identity_and_empty(self):
        assert sim.jaro("martha", "martha") == 1.0
        assert sim.jaro("", "abc") == 0.0

    def test_jaro_winkler_known_value(self):
        # Classic example: MARTHA vs MARHTA ~ 0.961
        assert abs(sim.jaro_winkler("martha", "marhta") - 0.961) < 0.01

    def test_jaro_winkler_rewards_prefix(self):
        base = sim.jaro("prefixab", "prefixcd")
        boosted = sim.jaro_winkler("prefixab", "prefixcd")
        assert boosted > base

    def test_jaccard(self):
        assert sim.jaccard_tokens("a b c", "b c d") == 0.5
        assert sim.jaccard_tokens("", "") == 0.0

    def test_overlap_coefficient(self):
        assert sim.overlap_coefficient("a b", "a b c d") == 1.0

    def test_cosine_tfidf_with_idf(self):
        idf = {"rare": 5.0, "common": 0.1}
        with_idf = sim.cosine_tfidf("rare common", "rare other", idf)
        without = sim.cosine_tfidf("rare common", "rare other")
        assert with_idf > without

    def test_exact_match(self):
        assert sim.exact_match(" x ", "x") == 1.0
        assert sim.exact_match("", "") == 0.0
        assert sim.exact_match("a", "b") == 0.0

    def test_numeric_similarity(self):
        assert sim.numeric_similarity("$ 100", "100.0") == 1.0
        assert sim.numeric_similarity("100", "50") == 0.5
        assert sim.numeric_similarity("no numbers", "100") == 0.0

    def test_monge_elkan(self):
        assert sim.monge_elkan("fast phone", "fast phone") > 0.99
        assert sim.monge_elkan("", "x") == 0.0

    def test_prefix_similarity(self):
        assert sim.prefix_similarity("abcd", "abxy") == 0.5

    @given(st.text("abcdef ", max_size=15), st.text("abcdef ", max_size=15))
    @settings(max_examples=60, deadline=None)
    def test_similarity_bounds_property(self, a, b):
        for fn in (sim.levenshtein_similarity, sim.jaro, sim.jaro_winkler,
                   sim.jaccard_tokens, sim.overlap_coefficient,
                   sim.cosine_tfidf, sim.exact_match, sim.monge_elkan):
            value = fn(a, b)
            assert -1e-9 <= value <= 1.0 + 1e-6
            assert abs(fn(a, b) - fn(a, b)) == 0  # deterministic

    @given(st.text("abc", min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_identity_is_maximal(self, a):
        assert sim.levenshtein_similarity(a, a) == 1.0
        assert sim.jaro(a, a) == 1.0


class TestLearners:
    def _blobs(self, n=200):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(n, 4))
        y = (x[:, 0] + 0.5 * x[:, 1] > 0).astype(int)
        return x, y

    def test_decision_tree_fits(self):
        x, y = self._blobs()
        tree = DecisionTree(max_depth=6).fit(x, y)
        assert (tree.predict(x) == y).mean() > 0.85

    def test_decision_tree_proba_bounds(self):
        x, y = self._blobs()
        proba = DecisionTree().fit(x, y).predict_proba(x)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_tree_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTree().predict(np.zeros((1, 2)))

    def test_random_forest_beats_chance(self):
        x, y = self._blobs()
        forest = RandomForest(n_trees=10).fit(x, y)
        assert (forest.predict(x) == y).mean() > 0.85

    def test_random_forest_deterministic_by_seed(self):
        x, y = self._blobs()
        a = RandomForest(n_trees=5, seed=1).fit(x, y).predict_proba(x)
        b = RandomForest(n_trees=5, seed=1).fit(x, y).predict_proba(x)
        assert np.allclose(a, b)

    def test_logreg_separable(self):
        x, y = self._blobs()
        model = LogisticRegression(iterations=300).fit(x, y)
        assert (model.predict(x) == y).mean() > 0.9

    def test_logreg_proba_monotone_in_feature(self):
        x, y = self._blobs()
        model = LogisticRegression(iterations=300).fit(x, y)
        lo = model.predict_proba(np.array([[-3, 0, 0, 0.0]]))
        hi = model.predict_proba(np.array([[3, 0, 0, 0.0]]))
        assert hi > lo


class TestMagellan:
    @pytest.fixture(scope="class")
    def splits(self):
        data = load_benchmark("dblp-acm", seed=7, scale=0.04)
        return split_dataset(data, child_rng(7, "split-mg"))

    def test_feature_generator_shapes(self, splits):
        generator = FeatureGenerator(splits.train.schema)
        features, labels = generator.fit_transform(splits.train)
        assert features.shape == (len(splits.train),
                                  len(generator.feature_names()))
        assert features.shape[1] == len(splits.train.schema) * 8
        assert np.all(np.isfinite(features))

    def test_run_protocol(self, splits):
        result = MagellanMatcher(seed=0).run(splits.train,
                                             splits.validation, splits.test)
        assert result.chosen_learner in {"decision_tree", "random_forest",
                                         "logistic_regression"}
        assert 0.0 <= result.test_metrics.f1 <= 1.0
        assert result.validation_f1 >= 0.0

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            MagellanMatcher().predict(
                load_benchmark("dblp-acm", seed=1, scale=0.02))

    def test_beats_chance_on_easy_data(self, splits):
        matcher = MagellanMatcher(seed=0).fit(splits.train,
                                              splits.validation)
        metrics = matcher.evaluate(splits.test)
        assert metrics.f1 > 0.3


class TestDeepMatcher:
    def test_word_vocab(self):
        data = load_benchmark("dblp-acm", seed=7, scale=0.02)
        vocab = WordVocab.build(data)
        assert len(vocab) > 10
        ids = vocab.encode("efficient data cleaning", max_length=8)
        assert ids.shape == (8,)
        assert vocab.pad_id == 0 and vocab.unk_id == 1

    def test_vocab_unknown_words_to_unk(self):
        vocab = WordVocab(["known"])
        ids = vocab.encode("known unknownzz", max_length=4)
        assert ids[1] == vocab.unk_id

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_all_variants_forward(self, rng, variant):
        model = DeepMatcherModel(50, variant, rng, embed_dim=16, hidden=8)
        ids = rng.integers(2, 50, size=(4, 10))
        logits = model(ids, ids, ids == 0, ids == 0)
        assert logits.shape == (4, 2)

    def test_invalid_variant_raises(self, rng):
        with pytest.raises(ValueError):
            DeepMatcherModel(50, "cnn", rng)

    def test_embedding_matrix_injection(self, rng):
        matrix = rng.normal(size=(50, 16)).astype(np.float32)
        model = DeepMatcherModel(50, "sif", rng, embed_dim=16,
                                 embedding_matrix=matrix)
        assert np.allclose(model.embedding.weight.data, matrix)

    def test_embedding_matrix_shape_checked(self, rng):
        with pytest.raises(ValueError):
            DeepMatcherModel(50, "sif", rng, embed_dim=16,
                             embedding_matrix=np.zeros((50, 8)))

    def test_run_protocol_small(self):
        data = load_benchmark("dblp-acm", seed=7, scale=0.03)
        splits = split_dataset(data, child_rng(7, "split-dm"))
        config = DeepMatcherConfig(epochs=2, variants=("sif",),
                                   use_pretrained_embeddings=False)
        result = DeepMatcher(config, seed=0).run(
            splits.train, splits.validation, splits.test)
        assert result.chosen_variant == "sif"
        assert "sif" in result.epoch_seconds
        assert result.epoch_seconds["sif"] > 0


class TestSGNS:
    def test_synonyms_closer_than_random(self):
        from repro.pretraining import generate_corpus
        corpus = generate_corpus(child_rng(0, "sgns-test"), 800)
        emb = train_sgns(corpus, dim=24, epochs=2, seed=0)
        def cos(a, b):
            va, vb = emb.vectors[a], emb.vectors[b]
            return float(va @ vb / (np.linalg.norm(va)
                                    * np.linalg.norm(vb) + 1e-9))
        assert cos("fast", "quick") > cos("fast", "jazz")

    def test_oov_get_zero_or_random(self):
        from repro.baselines.deepmatcher import WordEmbeddings
        emb = WordEmbeddings({"a": np.ones(4, dtype=np.float32)}, 4)
        assert np.allclose(emb.get("missing"), 0.0)
        assert "a" in emb

    def test_build_matrix_aligns_vocab(self):
        from repro.baselines.deepmatcher import WordEmbeddings
        emb = WordEmbeddings({"hello": np.full(4, 2.0, np.float32)}, 4)
        vocab = WordVocab(["hello", "other"])
        matrix = emb.build_matrix(vocab, np.random.default_rng(0))
        hello_id = vocab._token_to_id["hello"]
        assert np.allclose(matrix[hello_id], 2.0)
        assert np.allclose(matrix[vocab.pad_id], 0.0)

    def test_min_count_too_high_raises(self):
        with pytest.raises(ValueError):
            train_sgns(["one two"], min_count=10)
