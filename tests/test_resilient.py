"""Resilient serving tier: retries, breakers, hedging, supervision.

Four contracts anchor the fault-tolerance tier (DESIGN.md §15):

1. **bounded, deterministic retries** — backoff schedules are capped,
   monotone before the cap, jittered inside a seeded envelope, and
   bit-identical across runs; the retry budget is pure counter
   arithmetic;
2. **honest breakers** — a circuit never reaches ``half_open`` before
   its cooldown elapsed (proved over random event sequences via the
   transitions audit trail), probes are slot-limited, and a half-open
   failure restarts the cooldown;
3. **self-healing** — a chaos-killed replica is detected by the health
   probe, respawned into the same slot, and its stranded queue fails
   typed so the client retries it to completion;
4. **reproducibility** — an entire outage-and-recovery scenario (kills,
   slow forwards, hedges, failover, respawn) replays bit-identically
   under the :class:`VirtualClock`, and zero real sleeps appear in this
   file.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import MetricsRegistry, default_resilient_slos
from repro.resilience import ChaosConfig, ChaosMonkey, WorkerKilled
from repro.serve import (BreakerConfig, CallableBackend, CircuitBreaker,
                         HedgeConfig, MatchService, ReplicaSet,
                         RequestTimeout, ResilientClient,
                         ResilientConfig, RetryBudget, RetryConfig,
                         RetryPolicy, ServeConfig, ServiceClosed,
                         ServiceOverloaded, VirtualClock,
                         generate_workload, run_resilient_simulation,
                         validate_resilient_report)

pytestmark = pytest.mark.resilient

BENCH_SCRIPT = (Path(__file__).parent.parent / "benchmarks"
                / "bench_resilient_serve.py")


def _digit_score(entity_a, entity_b):
    """Deterministic identity-revealing score for queueing tests."""
    return float(entity_a["i"]) / 10_000.0


def _pair(i):
    return ({"i": str(i)}, {"i": str(i)})


def _fleet(clock, registry, num_replicas=2, monkeys=None,
           service_config=None, breaker_config=None,
           probe_interval_ms=50.0):
    config = service_config or ServeConfig(max_batch_size=4,
                                           max_wait_ms=5.0, max_queue=16)
    return ReplicaSet(
        lambda index: MatchService(
            CallableBackend(_digit_score), config, clock=clock,
            registry=registry,
            chaos=monkeys[index] if monkeys else None),
        num_replicas=num_replicas, clock=clock, registry=registry,
        breaker_config=breaker_config,
        probe_interval_ms=probe_interval_ms)


def _drain(client, clock):
    """Step virtual time timer-by-timer until every flight resolves."""
    clock.settle(lambda: client.settled)
    while client.outstanding:
        deadline = clock.next_deadline()
        if deadline is None:
            break
        clock.advance(max(deadline - clock.now(), 0.0))
        clock.settle(lambda: client.settled)


class TestRetryPolicyProperties:
    """Satellite 3: the backoff schedule's contract, property-tested."""

    @staticmethod
    def _policy(base, spread, multiplier, jitter, seed):
        return RetryPolicy(RetryConfig(max_attempts=6,
                                       base_delay_ms=base,
                                       multiplier=multiplier,
                                       max_delay_ms=base + spread,
                                       jitter=jitter, seed=seed))

    @given(base=st.floats(0.0, 100.0), spread=st.floats(0.0, 1000.0),
           multiplier=st.floats(1.0, 4.0), jitter=st.floats(0.0, 0.9),
           seed=st.integers(0, 2**31), request_id=st.integers(0, 10**6),
           attempt=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_backoff_is_bounded(self, base, spread, multiplier, jitter,
                                seed, request_id, attempt):
        policy = self._policy(base, spread, multiplier, jitter, seed)
        delay = policy.backoff(request_id, attempt)
        cap = (base + spread) / 1000.0 * (1.0 + jitter)
        assert 0.0 <= delay <= cap + 1e-12

    @given(base=st.floats(0.0, 100.0), spread=st.floats(0.0, 1000.0),
           multiplier=st.floats(1.0, 4.0))
    @settings(max_examples=100, deadline=None)
    def test_base_schedule_is_monotone_and_capped(self, base, spread,
                                                  multiplier):
        policy = self._policy(base, spread, multiplier, 0.0, 0)
        delays = [policy.base_delay(k) for k in range(1, 9)]
        assert all(a <= b + 1e-12 for a, b in zip(delays, delays[1:]))
        assert all(d <= (base + spread) / 1000.0 + 1e-12 for d in delays)

    @given(jitter=st.floats(0.0, 0.9), seed=st.integers(0, 2**31),
           request_id=st.integers(0, 10**6), attempt=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_jitter_envelope(self, jitter, seed, request_id, attempt):
        policy = self._policy(10.0, 500.0, 2.0, jitter, seed)
        base = policy.base_delay(attempt)
        delay = policy.backoff(request_id, attempt)
        assert abs(delay - base) <= jitter * base + 1e-12

    @given(seed=st.integers(0, 2**31), request_id=st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_schedule(self, seed, request_id):
        first = self._policy(10.0, 500.0, 2.0, 0.5, seed)
        second = self._policy(10.0, 500.0, 2.0, 0.5, seed)
        assert first.schedule(request_id) == second.schedule(request_id)

    @given(retry_after=st.floats(0.0, 10.0), attempt=st.integers(1, 8))
    @settings(max_examples=50, deadline=None)
    def test_retry_after_is_a_lower_bound(self, retry_after, attempt):
        policy = self._policy(10.0, 100.0, 2.0, 0.5, 0)
        delay = policy.backoff(7, attempt, retry_after=retry_after)
        assert delay >= retry_after

    def test_retryable_classification(self):
        from repro.serve import RequestCancelled, ServeError
        assert RetryPolicy.retryable(ServiceOverloaded(3, 0.1))
        assert RetryPolicy.retryable(ServiceClosed("gone"))
        assert RetryPolicy.retryable(RequestTimeout(1, waited=0.1))
        assert RetryPolicy.retryable(ServeError("boom"))
        assert not RetryPolicy.retryable(RequestCancelled(1))
        assert not RetryPolicy.retryable(KeyError("foreign"))
        assert not RetryPolicy.retryable(None)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RetryConfig(max_attempts=0)
        with pytest.raises(ValueError):
            RetryConfig(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryConfig(jitter=1.0)
        with pytest.raises(ValueError):
            RetryConfig(base_delay_ms=50.0, max_delay_ms=10.0)
        with pytest.raises(ValueError):
            RetryConfig(budget_ratio=-0.1)


class TestRetryBudget:
    def test_floor_then_ratio(self):
        budget = RetryBudget(ratio=0.5, min_retries=2)
        assert budget.allowance == 2
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()  # floor exhausted, no requests yet
        for _ in range(10):
            budget.note_request()
        assert budget.allowance == 5
        assert all(budget.try_spend() for _ in range(3))
        assert not budget.try_spend()
        assert budget.retries == 5 and budget.requests == 10

    def test_zero_budget_fails_fast(self):
        budget = RetryBudget(ratio=0.0, min_retries=0)
        budget.note_request()
        assert not budget.try_spend()


class TestCircuitBreaker:
    """Satellite 3: the state machine, including the cooldown proof."""

    @staticmethod
    def _breaker(clock, **kwargs):
        defaults = dict(window_seconds=30.0, min_volume=4,
                        failure_threshold=0.5, cooldown_seconds=2.0,
                        half_open_probes=1, close_after=2)
        defaults.update(kwargs)
        return CircuitBreaker("replica-0", BreakerConfig(**defaults),
                              clock=clock)

    def test_trips_at_threshold_with_min_volume(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # volume 2 < min_volume 4
        breaker.record_success()
        breaker.record_failure()  # 3 failures / 4 outcomes = 0.75
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_slots_and_close(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.allow()  # claims the single probe slot
        assert breaker.state == "half_open"
        assert not breaker.allow()  # no second slot
        breaker.record_success()
        assert breaker.state == "half_open"  # close_after = 2
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_restarts_cooldown(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(1.0)
        assert not breaker.allow()  # cooldown restarted at reopen
        clock.advance(1.0)
        assert breaker.allow()

    def test_release_returns_probe_slot(self):
        clock = VirtualClock()
        breaker = self._breaker(clock)
        for _ in range(4):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.release()
        assert breaker.allow()  # the slot came back

    def test_window_pruning_forgets_old_failures(self):
        clock = VirtualClock()
        breaker = self._breaker(clock, window_seconds=5.0)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)  # the three failures age out
        breaker.record_success()
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"  # 1/4 below threshold

    def test_reset_and_state_gauge(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        breaker = CircuitBreaker(
            "replica-9", BreakerConfig(min_volume=2, cooldown_seconds=1.0),
            clock=clock, registry=registry)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "open"
        gauge = registry.gauge("serve.breaker.state",
                               labels={"replica": "replica-9"})
        assert gauge.value == 1
        breaker.reset()
        assert breaker.state == "closed" and gauge.value == 0

    @given(events=st.lists(
        st.tuples(st.sampled_from(["ok", "fail", "allow"]),
                  st.floats(0.0, 3.0)),
        max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_no_half_open_before_cooldown_elapsed(self, events):
        clock = VirtualClock()
        cooldown = 2.0
        breaker = self._breaker(clock, cooldown_seconds=cooldown,
                                min_volume=2)
        for action, dt in events:
            clock.advance(dt)
            if action == "ok":
                breaker.record_success()
            elif action == "fail":
                breaker.record_failure()
            else:
                breaker.allow()
        last_open = None
        for state, at in breaker.transitions:
            if state == "open":
                last_open = at
            elif state == "half_open":
                assert last_open is not None
                assert at - last_open >= cooldown - 1e-9

    def test_config_validation(self):
        for kwargs in ({"window_seconds": 0.0}, {"min_volume": 0},
                       {"failure_threshold": 0.0},
                       {"failure_threshold": 1.5},
                       {"cooldown_seconds": -1.0},
                       {"half_open_probes": 0}, {"close_after": 0}):
            with pytest.raises(ValueError):
                BreakerConfig(**kwargs)


class TestRetryAfterContract:
    """Satellite 2: the backpressure hint is consumable and surfaced."""

    def test_retry_after_non_negative_and_monotone_in_depth(self):
        hints = {}
        for max_queue in (4, 8):
            clock = VirtualClock()
            service = MatchService(
                CallableBackend(_digit_score),
                ServeConfig(max_batch_size=4, max_wait_ms=5.0,
                            max_queue=max_queue),
                clock=clock, registry=MetricsRegistry())
            # Not started: the queue only fills, so the overflow depth
            # is exactly max_queue.
            for i in range(max_queue):
                service.submit(*_pair(i))
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(*_pair(99))
            assert excinfo.value.retry_after >= 0.0
            hints[max_queue] = excinfo.value.retry_after
            service.close(drain=False)
        assert hints[8] >= hints[4]  # deeper backlog, longer hint

    def test_retry_after_surfaced_in_histogram(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=4, max_wait_ms=5.0, max_queue=2),
            clock=clock, registry=registry)
        service.submit(*_pair(0))
        service.submit(*_pair(1))
        with pytest.raises(ServiceOverloaded):
            service.submit(*_pair(2))
        histogram = registry.histogram("serve.retry_after_seconds")
        assert histogram.count == 1
        service.close(drain=False)


class TestChaosServingFaults:
    """Satellite 1: the serving-level fault injectors are exact."""

    def test_delay_forward_pinned_rows(self):
        monkey = ChaosMonkey(ChaosConfig(
            delay_forward_rows=frozenset({3}),
            delay_forward_seconds=0.25, seed=0))
        assert monkey.maybe_delay_forward([0, 1, 2]) == 0.0
        assert monkey.maybe_delay_forward([2, 3]) == 0.25
        assert monkey.maybe_delay_forward([3]) == 0.25  # every occurrence

    def test_delay_forward_rate_is_seeded(self):
        def draws(seed):
            monkey = ChaosMonkey(ChaosConfig(delay_forward_rate=0.5,
                                             delay_forward_seconds=0.1,
                                             seed=seed))
            return [monkey.maybe_delay_forward([i]) for i in range(32)]
        assert draws(7) == draws(7)
        assert any(d > 0 for d in draws(7))
        assert any(d == 0 for d in draws(7))

    def test_kill_worker_ordinals_fire_once(self):
        monkey = ChaosMonkey(ChaosConfig(kill_worker_batches=frozenset({2})))
        monkey.maybe_kill_worker()  # batch 1 survives
        with pytest.raises(WorkerKilled) as excinfo:
            monkey.maybe_kill_worker()
        assert excinfo.value.batch_index == 2
        monkey.maybe_kill_worker()  # ordinal already fired

    def test_killed_worker_service_closes_and_fails_typed(self):
        clock = VirtualClock()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=1, max_wait_ms=5.0, max_queue=8),
            clock=clock, registry=MetricsRegistry(),
            chaos=ChaosMonkey(ChaosConfig(
                kill_worker_batches=frozenset({1}))))
        service.start()
        first = service.submit(*_pair(1))
        clock.settle(lambda: service.settled)
        assert first.exception() is None
        assert not service.healthy  # the kill fired after batch 1
        stranded = service.submit(*_pair(2))
        service.close(drain=True)  # must not hang on the dead pool
        assert isinstance(stranded.exception(), ServiceClosed)


class TestReplicaSet:
    """Tentpole (c): the supervisor detects, respawns, and reroutes."""

    def test_probe_respawns_killed_replica(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        monkeys = [ChaosMonkey(ChaosConfig(
            kill_worker_batches=frozenset({1}) if index == 0
            else frozenset())) for index in range(2)]
        replicas = _fleet(clock, registry, monkeys=monkeys)
        replicas.start()
        victim = replicas.replicas[0]
        victim.service.submit(*_pair(1))
        clock.advance(0.005)  # the partial batch flushes at max_wait
        clock.settle(lambda: replicas.settled)
        assert not victim.service.healthy
        assert replicas.healthy_count == 1
        clock.advance(0.05)  # the probe interval
        clock.settle(lambda: replicas.settled)
        assert victim.respawns == 1 and victim.generation == 2
        assert victim.service.healthy and replicas.healthy_count == 2
        assert registry.counter("serve.replicas.respawns").value == 1
        assert registry.gauge("serve.replicas.alive").value == 2
        replicas.close()

    def test_pick_prefers_least_loaded_and_honors_breakers(self):
        clock = VirtualClock()
        replicas = _fleet(clock, MetricsRegistry(), num_replicas=3)
        replicas.start()
        # Queue depth is 0 everywhere: ties break by index.
        assert replicas.pick().index == 0
        assert replicas.pick(exclude={0}).index == 1
        # An open breaker takes its replica out of the rotation.
        config = replicas.breaker_config
        for _ in range(max(config.min_volume, 8)):
            replicas.replicas[0].breaker.record_failure()
        assert replicas.replicas[0].breaker.state == "open"
        assert replicas.pick().index == 1
        # Excluded-everywhere falls back to the excluded survivor.
        for replica in replicas.replicas[1:]:
            for _ in range(max(config.min_volume, 8)):
                replica.breaker.record_failure()
        assert replicas.pick(exclude={0, 1, 2}) is None
        replicas.close()

    def test_capacity_depth_and_drain_hint(self):
        clock = VirtualClock()
        replicas = _fleet(clock, MetricsRegistry(), num_replicas=2)
        replicas.start()
        assert replicas.capacity == 32  # 2 × max_queue 16
        assert replicas.total_queue_depth == 0
        assert replicas.drain_hint() > 0.0
        replicas.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            _fleet(VirtualClock(), MetricsRegistry(), num_replicas=0)
        with pytest.raises(ValueError):
            _fleet(VirtualClock(), MetricsRegistry(),
                   probe_interval_ms=0.0)


class TestResilientClient:
    """Tentpole (a)+(d): flights ride out faults, shed saturation."""

    def test_plain_requests_complete(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        client = ResilientClient(_fleet(clock, registry),
                                 registry=registry)
        with client:
            tickets = [client.submit(*_pair(i)) for i in range(8)]
            _drain(client, clock)
            for i, ticket in enumerate(tickets):
                assert ticket.exception() is None
                assert ticket.result().probability \
                    == pytest.approx(i / 10_000.0)
        assert registry.counter("serve.client.completed").value == 8
        assert registry.counter("serve.client.errors").value == 0

    def test_failover_retries_after_respawn(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        monkeys = [ChaosMonkey(ChaosConfig(
            kill_worker_batches=frozenset({1})))]
        client = ResilientClient(
            _fleet(clock, registry, num_replicas=1, monkeys=monkeys,
                   service_config=ServeConfig(max_batch_size=1,
                                              max_wait_ms=5.0,
                                              max_queue=8)),
            ResilientConfig(retry=RetryConfig(max_attempts=4,
                                              base_delay_ms=25.0, seed=0),
                            hedge=HedgeConfig(enabled=False),
                            attempt_timeout_ms=500.0),
            registry=registry)
        with client:
            first = client.submit(*_pair(1))
            _drain(client, clock)
            assert first.exception() is None
            # The kill fired: routing finds no healthy replica, so the
            # flight backs off (25/50/100 ms, outlasting the 50 ms
            # probe) until the respawned service takes the retry.
            second = client.submit(*_pair(2))
            _drain(client, clock)
            assert second.exception() is None
        assert client.replicas.replicas[0].respawns == 1
        assert registry.counter("serve.client.retries").value >= 1
        assert registry.counter("serve.client.errors").value == 0

    def test_hedge_wins_against_straggler(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        # Replica 0 sleeps 1 s on its first request; replica 1 is clean.
        monkeys = [ChaosMonkey(ChaosConfig(
            delay_forward_rows=frozenset({0}),
            delay_forward_seconds=1.0)), ChaosMonkey(ChaosConfig())]
        client = ResilientClient(
            _fleet(clock, registry, monkeys=monkeys,
                   probe_interval_ms=5000.0),
            ResilientConfig(hedge=HedgeConfig(delay_ms=50.0),
                            attempt_timeout_ms=5000.0),
            registry=registry)
        with client:
            ticket = client.submit(*_pair(1))
            _drain(client, clock)
            assert ticket.exception() is None
            assert ticket.latency < 0.5  # the hedge won, not the sleeper
        assert registry.counter("serve.hedge.launched").value == 1
        assert registry.counter("serve.hedge.wins").value == 1

    def test_load_shedding_rejects_with_drain_hint(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        # One replica whose worker sleeps 10 s on request key 0: the
        # queue behind it only grows, so the shed threshold
        # (0.5 × capacity 4 = 2) is hit deterministically.
        monkeys = [ChaosMonkey(ChaosConfig(
            delay_forward_rows=frozenset({0}),
            delay_forward_seconds=10.0))]
        client = ResilientClient(
            _fleet(clock, registry, num_replicas=1, monkeys=monkeys,
                   service_config=ServeConfig(max_batch_size=1,
                                              max_wait_ms=5.0,
                                              max_queue=4),
                   probe_interval_ms=60000.0),
            ResilientConfig(hedge=HedgeConfig(enabled=False),
                            attempt_timeout_ms=60000.0,
                            shed_queue_factor=0.5),
            registry=registry)
        client.start()
        client.submit(*_pair(0))
        clock.settle(lambda: client.settled)  # worker now asleep on 0
        client.submit(*_pair(1))
        client.submit(*_pair(2))
        with pytest.raises(ServiceOverloaded) as excinfo:
            client.submit(*_pair(3))
        assert excinfo.value.retry_after > 0.0
        assert registry.counter("serve.client.shed").value == 1
        client.close(drain=False)

    def test_deadline_propagation_beats_attempt_timeout(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        monkeys = [ChaosMonkey(ChaosConfig(
            delay_forward_rows=frozenset({0}),
            delay_forward_seconds=10.0))]
        client = ResilientClient(
            _fleet(clock, registry, num_replicas=1, monkeys=monkeys,
                   service_config=ServeConfig(max_batch_size=1,
                                              max_wait_ms=5.0,
                                              max_queue=4),
                   probe_interval_ms=60000.0),
            ResilientConfig(hedge=HedgeConfig(enabled=False),
                            attempt_timeout_ms=5000.0),
            registry=registry)
        client.start()
        ticket = client.submit(*_pair(0), timeout_ms=150.0)
        _drain(client, clock)
        error = ticket.exception()
        assert isinstance(error, RequestTimeout)
        assert error.waited == pytest.approx(0.150)
        assert registry.counter("serve.client.timeouts").value == 1
        # No retry was scheduled after the logical deadline fired.
        assert registry.counter("serve.client.retries").value == 0
        client.close(drain=False)

    def test_budget_exhaustion_fails_fast(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        # Every replica's worker pool is dead from batch one... actually
        # simpler: no replica is ever healthy because the set is never
        # started — submissions fail synchronously and the zero budget
        # denies every retry.
        replicas = _fleet(clock, registry, num_replicas=1)
        client = ResilientClient(
            replicas,
            ResilientConfig(retry=RetryConfig(max_attempts=4,
                                              budget_ratio=0.0,
                                              min_retries=0, seed=0),
                            hedge=HedgeConfig(enabled=False)),
            registry=registry)
        # Start the set, then break the only replica hard by closing
        # its service out from under the router.
        client.start()
        replicas.replicas[0].service.close(drain=False)
        ticket = client.submit(*_pair(1))
        _drain(client, clock)
        assert ticket.exception() is not None
        assert registry.counter("serve.client.budget_exhausted").value == 1
        assert registry.counter("serve.client.retries").value == 0
        client.close(drain=False)

    def test_submit_after_close_raises(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        client = ResilientClient(_fleet(clock, registry),
                                 registry=registry)
        client.start()
        client.close()
        with pytest.raises(ServiceClosed):
            client.submit(*_pair(1))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            HedgeConfig(delay_ms=0.0)
        with pytest.raises(ValueError):
            HedgeConfig(percentile=1.0)
        with pytest.raises(ValueError):
            HedgeConfig(max_hedges=-1)
        with pytest.raises(ValueError):
            ResilientConfig(attempt_timeout_ms=0.0)
        with pytest.raises(ValueError):
            ResilientConfig(shed_queue_factor=0.0)


class TestChaosRecoveryDeterminism:
    """Tentpole acceptance: a full outage-and-recovery scenario —
    kills, slow forwards, attempt timeouts, hedges, failover, respawn —
    replays bit-identically under the virtual clock."""

    @staticmethod
    def _run_burst_scenario():
        clock = VirtualClock()
        registry = MetricsRegistry()
        monkeys = [ChaosMonkey(ChaosConfig(
            kill_worker_batches=frozenset({2}) if index == 0
            else frozenset(),
            delay_forward_rows=frozenset({7}),
            delay_forward_seconds=0.3, seed=index))
            for index in range(2)]
        replicas = _fleet(
            clock, registry, monkeys=monkeys,
            service_config=ServeConfig(max_batch_size=4, max_wait_ms=5.0,
                                       max_queue=8),
            breaker_config=BreakerConfig(min_volume=2,
                                         cooldown_seconds=0.5),
            probe_interval_ms=50.0)
        client = ResilientClient(
            replicas,
            ResilientConfig(retry=RetryConfig(max_attempts=4,
                                              base_delay_ms=5.0, seed=0),
                            hedge=HedgeConfig(delay_ms=100.0),
                            attempt_timeout_ms=200.0),
            registry=registry)
        pairs = [_pair(i) for i in range(8)]
        workload = generate_workload(pairs, num_requests=60, rate=400.0,
                                     seed=1, pattern="burst",
                                     burst_size=8)
        report = run_resilient_simulation(client, workload)
        return (report.completed, report.errors, report.timeouts,
                report.rejected,
                tuple(round(latency, 12) for latency in report.latencies),
                tuple(replica.respawns for replica in replicas.replicas),
                client.policy.budget.retries)

    def test_chaos_recovery_is_bit_reproducible(self):
        first = self._run_burst_scenario()
        second = self._run_burst_scenario()
        assert first == second
        completed, errors, timeouts, rejected = first[:4]
        assert completed + errors + timeouts + rejected == 60
        assert completed > 0

    def test_calm_simulation_is_bit_reproducible_and_lossless(self):
        def run():
            clock = VirtualClock()
            registry = MetricsRegistry()
            client = ResilientClient(_fleet(clock, registry),
                                     registry=registry)
            workload = generate_workload([_pair(i) for i in range(8)],
                                         num_requests=40, rate=200.0,
                                         seed=3)
            report = run_resilient_simulation(client, workload)
            return (report.completed, report.errors,
                    tuple(round(latency, 12)
                          for latency in report.latencies))
        first = run()
        second = run()
        assert first == second
        assert first[0] == 40 and first[1] == 0


class TestResilientSLOs:
    """Satellite: the tier's metrics feed the stock SLO recipe."""

    def test_slo_recipe_reads_client_metrics(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        client = ResilientClient(_fleet(clock, registry),
                                 registry=registry)
        with client:
            for i in range(10):
                client.submit(*_pair(i))
            _drain(client, clock)
        slos = {slo.name: slo for slo in default_resilient_slos()}
        good, total = slos["resilient-availability"].read(registry)
        assert (good, total) == (10.0, 10.0)
        good, total = slos["resilient-latency"].read(registry)
        assert total == 10.0 and good == 10.0  # virtual-time latencies


class TestBenchReport:
    """Satellite 6: the resilience benchmark emits a valid report."""

    def test_validate_flags_gaps(self):
        assert validate_resilient_report({}) != []
        problems = validate_resilient_report({"benchmark": "resilient"})
        assert any("chaos" in problem for problem in problems)

    def test_bench_script_smoke(self, tiny_zoo_dir, tmp_path):
        out = tmp_path / "BENCH_resilient.json"
        proc = subprocess.run(
            [sys.executable, str(BENCH_SCRIPT), "--smoke",
             "--zoo-dir", str(tiny_zoo_dir), "--output", str(out)],
            cwd=BENCH_SCRIPT.parent, capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": f"{BENCH_SCRIPT.parent.parent / 'src'}:."},
            check=False)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert validate_resilient_report(report) == []
        assert report["smoke"] is True
        assert report["chaos"]["resilient"]["offered"] == 32


class TestNoRealSleeps:
    def test_no_real_sleeps_in_this_test_file(self):
        import ast
        tree = ast.parse(Path(__file__).read_text())
        sleeps = [
            node.lineno for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sleep"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"]
        imports = [
            node.lineno for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"]
        assert sleeps == [] and imports == []
