"""int8 quantization and the confidence cascade.

Three contracts anchor the quant/cascade layer:

1. quantize -> dequantize error is bounded by half a grid step per
   output channel, and the quantized kernels accumulate in ``ACC_DTYPE``
   (never NEP-50-promoted float64);
2. calibrated int8 inference preserves match *decisions* on held-out
   pairs — the acceptance gate is agreement, not speed;
3. the cascade is invisible outside the ambiguity band: pairs whose
   primary probability falls outside ``(lo, hi)`` return the primary's
   outcome bit-identically, and the degenerate band ``[0.5, 0.5]``
   never invokes the secondary at all.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import load_benchmark, split_dataset
from repro.matching import (CascadeBand, CascadeEngine, EntityMatcher,
                            FineTuneConfig, build_cascade, calibrate_band)
from repro.nn import (ACC_DTYPE, CheckpointError, QuantizedLinear,
                      QuantizedWeights, dequantize, quantize_per_channel)
from repro.nn.fused import count_kernels, qlinear
from repro.nn.quant import QMAX
from repro.obs import MetricsRegistry
from repro.resilience import MatchOutcome
from repro.serve import (CascadeBackend, MatchService, ServeConfig,
                         VirtualClock)
from repro.utils import child_rng

pytestmark = pytest.mark.quant


# -- fixtures ---------------------------------------------------------------

@pytest.fixture(scope="module")
def quant_splits():
    data = load_benchmark("dblp-acm", seed=7, scale=0.04)
    return split_dataset(data, child_rng(7, "split", "dblp-acm"))


def _fit(arch, tiny_settings, tiny_zoo_dir, splits):
    matcher = EntityMatcher(
        arch, seed=0, zoo_settings=tiny_settings, zoo_dir=tiny_zoo_dir,
        finetune_config=FineTuneConfig(epochs=2, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(splits.train)
    return matcher


@pytest.fixture(scope="module")
def fitted_distil(tiny_settings, tiny_zoo_dir, quant_splits):
    return _fit("distilbert", tiny_settings, tiny_zoo_dir, quant_splits)


@pytest.fixture(scope="module")
def fitted_roberta(tiny_settings, tiny_zoo_dir, quant_splits):
    return _fit("roberta", tiny_settings, tiny_zoo_dir, quant_splits)


def _record_pairs(splits, n):
    pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    return [pairs[i % len(pairs)] for i in range(n)]


# -- contract 1: quantization math ------------------------------------------

class TestQuantizeRoundTrip:

    @given(st.integers(1, 6), st.integers(1, 8),
           st.integers(0, 2**32 - 1), st.floats(1e-3, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_round_trip_error_bounded_by_half_step(self, rows, cols,
                                                   seed, spread):
        rng = np.random.default_rng(seed)
        weight = rng.normal(scale=spread,
                            size=(rows, cols)).astype(ACC_DTYPE)
        grid, scale = quantize_per_channel(weight)
        assert grid.dtype == np.int8
        assert np.all(np.abs(grid.astype(np.int32)) <= QMAX)
        back = dequantize(grid, scale)
        # Half a grid step per channel, plus float32 rounding slack.
        bound = scale[:, None] * (0.5 + 1e-4)
        assert np.all(np.abs(back - weight) <= bound)

    def test_zero_rows_round_trip_exactly(self):
        weight = np.zeros((3, 4), dtype=ACC_DTYPE)
        weight[1] = 0.25
        grid, scale = quantize_per_channel(weight)
        back = dequantize(grid, scale)
        assert np.all(back[0] == 0.0) and np.all(back[2] == 0.0)
        assert np.allclose(back[1], 0.25, atol=float(scale[1]))

    def test_rejects_non_matrix_weights(self):
        with pytest.raises(ValueError):
            quantize_per_channel(np.zeros(4, dtype=ACC_DTYPE))

    def test_rejects_non_int8_payload(self):
        with pytest.raises(ValueError):
            QuantizedLinear(q=np.zeros((2, 2), dtype=np.int32),
                            scale=np.ones(2, dtype=ACC_DTYPE), bias=None,
                            act_range=np.ones(2, dtype=ACC_DTYPE))

    def test_qlinear_accumulates_in_acc_dtype(self, rng):
        x = rng.normal(size=(4, 8)).astype(ACC_DTYPE)
        weight = rng.normal(size=(5, 8)).astype(ACC_DTYPE)
        bias = rng.normal(size=5).astype(ACC_DTYPE)
        grid, scale = quantize_per_channel(weight)
        quantized = QuantizedLinear(
            q=grid, scale=scale, bias=bias,
            act_range=np.abs(x).max(axis=0).astype(ACC_DTYPE))
        out = qlinear(x, quantized)
        assert out.dtype == ACC_DTYPE
        assert quantized.q32.dtype == ACC_DTYPE
        reference = x @ weight.T + bias
        # Worst case: half a step of weight error against each input
        # plus half a step of activation error against each weight.
        atol = x.shape[-1] * (
            float(np.abs(x).max()) * float(scale.max()) / 2.0
            + (float(np.abs(weight).max()) + float(scale.max()))
            * quantized.act_scale / 2.0) * 1.5 + 1e-6
        assert np.max(np.abs(out - reference)) <= atol


class TestQuantizedWeightsArtifact:

    def _weights(self, rng):
        layers = {}
        for name, (out, inp) in (("backbone.layer0", (6, 4)),
                                 ("head", (2, 6))):
            weight = rng.normal(size=(out, inp)).astype(ACC_DTYPE)
            grid, scale = quantize_per_channel(weight)
            layers[name] = QuantizedLinear(
                q=grid, scale=scale,
                bias=rng.normal(size=out).astype(ACC_DTYPE),
                act_range=np.abs(rng.normal(
                    size=inp)).astype(ACC_DTYPE))
        return QuantizedWeights(layers, metadata={"arch": "test"})

    def test_save_load_round_trip(self, rng, tmp_path):
        weights = self._weights(rng)
        path = tmp_path / "w-int8.npz"
        weights.save(path)
        loaded = QuantizedWeights.load(path)
        assert sorted(loaded.layers) == sorted(weights.layers)
        assert loaded.metadata["arch"] == "test"
        for name, original in weights.layers.items():
            restored = loaded.layers[name]
            assert restored.q.dtype == np.int8
            assert np.array_equal(restored.q, original.q)
            assert np.array_equal(restored.scale, original.scale)
            assert np.array_equal(restored.bias, original.bias)
            assert restored.act_scale == original.act_scale

    def test_load_rejects_foreign_checkpoint(self, rng, tmp_path):
        from repro.nn import save_checkpoint
        path = tmp_path / "other.npz"
        save_checkpoint(path, {"x": np.zeros(2, dtype=np.int8)},
                        metadata={"kind": "something-else"})
        with pytest.raises(CheckpointError):
            QuantizedWeights.load(path)

    def test_overlay_rejects_mismatched_module(self, rng):
        weights = self._weights(rng)

        class _FakeParam:
            def __init__(self, shape):
                self.data = np.zeros(shape, dtype=ACC_DTYPE)

        class _FakeModule:
            def named_parameters(self):
                # head is missing, layer0 has the wrong shape.
                return {"backbone.layer0.weight": _FakeParam((3, 3))}.items()

        with pytest.raises(CheckpointError) as excinfo:
            weights.overlay_for(_FakeModule())
        assert "backbone.layer0" in str(excinfo.value)
        assert "head" in str(excinfo.value)


# -- contract 2: calibrated inference consistency ---------------------------

class TestCalibratedInference:

    @pytest.fixture(scope="class")
    def calibrated_distil(self, fitted_distil, quant_splits):
        pairs = [(p.record_a, p.record_b)
                 for p in quant_splits.train.pairs]
        fitted_distil.quantize(pairs[:32], batch_size=16)
        return fitted_distil, pairs[32:64]

    def test_calibration_covers_layers(self, calibrated_distil):
        matcher, _ = calibrated_distil
        weights = matcher.quantized_weights
        assert len(weights.layers) > 0
        for quantized in weights.layers.values():
            assert quantized.q.dtype == np.int8
        classifier = matcher._require_fitted().classifier
        assert weights.nbytes < sum(
            p.data.nbytes
            for n, p in classifier.named_parameters()
            if n.endswith(".weight"))

    def test_decision_consistency_gate(self, calibrated_distil):
        matcher, holdout = calibrated_distil
        report = matcher.quantization_consistency(holdout, batch_size=16)
        assert report.pairs == len(holdout)
        assert report.consistency >= 0.95
        assert report.max_probability_delta < 0.05

    def test_quantized_kernels_fully_cover_forward(self,
                                                   calibrated_distil,
                                                   quant_splits):
        matcher, _ = calibrated_distil
        engine = matcher.engine(quantized=True)
        with count_kernels() as counts:
            engine.score_pairs(_record_pairs(quant_splits, 4),
                               fallback=False, batch_size=4)
        assert counts.get("qlinear", 0) > 0
        assert counts.get("qfeed_forward", 0) > 0
        assert counts.get("qattention_core", 0) > 0
        # Every linear the forward runs must be calibrated: a partial
        # overlay would silently mix float and int8 layers.
        assert counts.get("linear", 0) == 0
        assert counts.get("feed_forward", 0) == 0

    def test_quantized_matching_requires_artifact(self, fitted_roberta):
        with pytest.raises(RuntimeError):
            fitted_roberta.engine(quantized=True)

    def test_artifact_reload_reproduces_decisions(self, calibrated_distil,
                                                  quant_splits, tmp_path):
        matcher, _ = calibrated_distil
        pairs = _record_pairs(quant_splits, 8)
        before = matcher.match_many(pairs, fast=True, quantized=True,
                                    batch_size=4)
        path = tmp_path / "distil-int8.npz"
        matcher.quantized_weights.save(path)
        matcher.load_quantized(path)
        after = matcher.match_many(pairs, fast=True, quantized=True,
                                   batch_size=4)
        for x, y in zip(before, after):
            assert x.probability == y.probability  # bitwise
            assert x.matched == y.matched


# -- contract 3: cascade invariance -----------------------------------------

class _StubEngine:
    """Engine-protocol stub returning canned probabilities by pair."""

    def __init__(self, probabilities):
        self.probabilities = dict(probabilities)
        self.calls = 0
        self.seen = []

    def score_pairs(self, pairs, threshold=0.5, fallback=True, cb=None,
                    batch_size=64, keys=None, forward_hook=None,
                    stages=None):
        self.calls += 1
        keys = list(keys) if keys is not None else list(range(len(pairs)))
        self.seen.append(list(pairs))
        return [MatchOutcome(index=key,
                             probability=self.probabilities[pair],
                             matched=self.probabilities[pair] >= threshold)
                for key, pair in zip(keys, pairs)]


def _band(lo, hi):
    return CascadeBand(lo=lo, hi=hi, escalation_rate=0.0, f1=0.0,
                       secondary_f1=0.0)


class TestCascadeInvariance:

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=24),
           st.floats(0.01, 0.45))
    @settings(max_examples=40, deadline=None)
    def test_outside_band_bit_identical_to_primary(self, probs, width):
        pairs = [f"pair-{i}" for i in range(len(probs))]
        primary = _StubEngine(dict(zip(pairs, probs)))
        secondary = _StubEngine({pair: 1.0 - prob
                                 for pair, prob in zip(pairs, probs)})
        lo, hi = 0.5 - width, 0.5 + width
        cascade = CascadeEngine(primary, secondary, _band(lo, hi),
                                registry=MetricsRegistry())
        outcomes = cascade.score_pairs(pairs)
        reference = primary.score_pairs(pairs)
        for pair, prob, outcome, base in zip(pairs, probs, outcomes,
                                             reference):
            if lo < prob < hi:
                assert outcome.probability == 1.0 - prob
            else:
                # Bit-identical to primary-only matching.
                assert outcome.probability == base.probability
                assert outcome.matched == base.matched
                assert outcome.index == base.index

    @given(st.lists(st.floats(0.0, 1.0), min_size=1, max_size=24))
    @settings(max_examples=40, deadline=None)
    def test_degenerate_band_never_escalates(self, probs):
        pairs = [f"pair-{i}" for i in range(len(probs))]
        primary = _StubEngine(dict(zip(pairs, probs)))
        secondary = _StubEngine(dict(zip(pairs, probs)))
        cascade = CascadeEngine(primary, secondary, (0.5, 0.5),
                                registry=MetricsRegistry())
        cascade.score_pairs(pairs)
        assert secondary.calls == 0
        assert cascade.last_escalation_rate() == 0.0

    def test_degraded_outcomes_never_escalate(self):
        class _DegradedEngine(_StubEngine):
            def score_pairs(self, pairs, **kwargs):
                outcomes = super().score_pairs(pairs, **kwargs)
                return [MatchOutcome(index=o.index, probability=0.5,
                                     matched=False, degraded=True)
                        for o in outcomes]

        pairs = ["a", "b"]
        primary = _DegradedEngine({p: 0.5 for p in pairs})
        secondary = _StubEngine({p: 1.0 for p in pairs})
        cascade = CascadeEngine(primary, secondary, (0.0, 1.0),
                                registry=MetricsRegistry())
        outcomes = cascade.score_pairs(pairs)
        assert secondary.calls == 0
        assert all(o.degraded for o in outcomes)

    def test_rejects_invalid_band(self):
        with pytest.raises(ValueError):
            CascadeEngine(_StubEngine({}), _StubEngine({}), (0.7, 0.3),
                          registry=MetricsRegistry())

    def test_escalation_counters(self):
        pairs = ["low", "mid", "high"]
        primary = _StubEngine({"low": 0.1, "mid": 0.5, "high": 0.9})
        secondary = _StubEngine({"low": 0.0, "mid": 0.8, "high": 1.0})
        registry = MetricsRegistry()
        cascade = CascadeEngine(primary, secondary, (0.3, 0.7),
                                registry=registry)
        outcomes = cascade.score_pairs(pairs)
        assert registry.counter("cascade.pairs").snapshot()["value"] == 3
        assert registry.counter(
            "cascade.escalated.pairs").snapshot()["value"] == 1
        assert cascade.last_escalation_rate() == pytest.approx(1 / 3)
        assert [o.probability for o in outcomes] == [0.1, 0.8, 0.9]
        # Escalated outcomes keep their original keys.
        assert [o.index for o in outcomes] == [0, 1, 2]


class TestBandCalibration:

    def test_identical_models_degenerate_to_no_escalation(self):
        probs = [0.1, 0.4, 0.6, 0.9]
        labels = [0, 0, 1, 1]
        band = calibrate_band(probs, probs, labels)
        assert band.lo == band.hi == 0.5
        assert band.escalation_rate == 0.0
        assert band.f1 == band.secondary_f1

    def test_band_widens_until_f1_recovers(self):
        # The primary is wrong near the threshold, the secondary is
        # right: only a band wide enough to cover 0.45/0.55 recovers.
        primary = [0.05, 0.45, 0.55, 0.95]
        secondary = [0.05, 0.95, 0.05, 0.95]
        labels = [0, 1, 0, 1]
        band = calibrate_band(primary, secondary, labels)
        assert band.lo < 0.45 < band.hi
        assert band.f1 == band.secondary_f1 == 1.0
        assert 0.0 < band.escalation_rate <= 0.5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            calibrate_band([0.5], [0.5, 0.6], [1])


class TestCascadeIntegration:

    @pytest.fixture(scope="class")
    def cascade(self, fitted_distil, fitted_roberta, quant_splits):
        return build_cascade(fitted_distil, fitted_roberta,
                             quant_splits.validation, batch_size=16)

    def test_band_is_calibrated(self, cascade):
        band = cascade.calibration
        assert 0.0 <= band.lo <= band.hi <= 1.0
        assert band.f1 >= band.secondary_f1 - 0.005

    def test_outside_band_matches_primary_engine(self, cascade,
                                                 fitted_distil,
                                                 quant_splits):
        pairs = _record_pairs(quant_splits, 24)
        outcomes = cascade.score_pairs(pairs, fallback=False,
                                       batch_size=8)
        reference = fitted_distil.engine().score_pairs(
            pairs, fallback=False, batch_size=8)
        lo, hi = cascade.band
        for outcome, base in zip(outcomes, reference):
            if not lo < base.probability < hi:
                assert outcome.probability == base.probability  # bitwise

    def test_cascade_backend_matches_engine(self, cascade, quant_splits):
        pairs = _record_pairs(quant_splits, 16)
        direct = cascade.score_pairs(pairs, fallback=False, batch_size=8)

        service = MatchService(
            CascadeBackend(cascade, batch_size=8),
            ServeConfig(max_batch_size=len(pairs), max_wait_ms=5.0,
                        max_queue=len(pairs)),
            clock=VirtualClock(), registry=MetricsRegistry())
        tickets = service.submit_many(pairs)
        service.start()
        service.close(drain=True)
        for ticket, expected in zip(tickets, direct):
            outcome = ticket.result(timeout=60.0)
            assert outcome.probability == expected.probability  # bitwise
            assert outcome.matched == expected.matched
