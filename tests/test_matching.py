"""Matching core: serialization, metrics, fine-tuning, EntityMatcher API."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import EMDataset, EntityPair, Record, load_benchmark, \
    split_dataset
from repro.matching import (EntityMatcher, FineTuneConfig, MatchingMetrics,
                            choose_max_length, confusion_matrix,
                            encode_dataset, evaluate_predictions, f1_score,
                            fine_tune, pair_texts)
from repro.utils import child_rng


def _tiny_dataset(seed=7, scale=0.04, name="dblp-acm"):
    data = load_benchmark(name, seed=seed, scale=scale)
    return split_dataset(data, child_rng(seed, "split", name))


class TestMetrics:
    def test_perfect_predictions(self):
        y = np.array([0, 1, 1, 0])
        m = evaluate_predictions(y, y)
        assert m.f1 == 1.0
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.accuracy == 1.0

    def test_all_negative_zero_f1(self):
        m = evaluate_predictions(np.array([1, 1, 0]), np.zeros(3, int))
        assert m.f1 == 0.0
        assert m.recall == 0.0

    def test_confusion_matrix(self):
        tp, fp, fn, tn = confusion_matrix(np.array([1, 1, 0, 0]),
                                          np.array([1, 0, 1, 0]))
        assert (tp, fp, fn, tn) == (1, 1, 1, 1)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            confusion_matrix(np.zeros(3), np.zeros(4))

    def test_f1_known_value(self):
        # P = 1/2, R = 1/3 -> F1 = 0.4
        y_true = np.array([1, 1, 1, 0, 0])
        y_pred = np.array([1, 0, 0, 1, 0])
        assert abs(f1_score(y_true, y_pred) - 0.4) < 1e-9

    def test_as_percent(self):
        m = MatchingMetrics(0.5, 0.25, 1 / 3, 1, 1, 3, 5)
        pct = m.as_percent()
        assert abs(pct.f1 - 100 / 3) < 1e-6
        assert pct.true_positives == 1

    @given(st.lists(st.tuples(st.integers(0, 1), st.integers(0, 1)),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_f1_bounds_property(self, pairs):
        y_true = np.array([a for a, _ in pairs])
        y_pred = np.array([b for _, b in pairs])
        m = evaluate_predictions(y_true, y_pred)
        assert 0.0 <= m.f1 <= 1.0
        assert 0.0 <= m.precision <= 1.0
        assert 0.0 <= m.recall <= 1.0
        if m.precision and m.recall:
            harmonic = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert abs(m.f1 - harmonic) < 1e-9


class TestSerializer:
    def _pair(self):
        return EntityPair(Record({"title": "fast phone", "price": "9"}),
                          Record({"title": "quick phone", "price": "9"}), 1)

    def test_pair_texts_all_attributes(self):
        a, b = pair_texts(self._pair(), ["title", "price"])
        assert a == "fast phone 9"
        assert b == "quick phone 9"

    def test_pair_texts_subset(self):
        a, _ = pair_texts(self._pair(), ["price"])
        assert a == "9"

    def test_choose_max_length_bounds(self, tiny_bert):
        splits = _tiny_dataset()
        length = choose_max_length(splits.train, tiny_bert.tokenizer,
                                   cap=48)
        assert 16 <= length <= 48

    def test_choose_max_length_empty_dataset(self, tiny_bert):
        empty = EMDataset("e", "d", ["t"], [])
        assert choose_max_length(empty, tiny_bert.tokenizer) == 16

    def test_encode_dataset_shapes(self, tiny_bert):
        splits = _tiny_dataset()
        encoded = encode_dataset(splits.test, tiny_bert.tokenizer, 32)
        n = len(splits.test)
        assert encoded.input_ids.shape == (n, 32)
        assert encoded.segment_ids.shape == (n, 32)
        assert encoded.pad_masks.shape == (n, 32)
        assert encoded.labels.shape == (n,)
        assert np.array_equal(encoded.labels,
                              np.array(splits.test.labels()))

    def test_encoded_batch_view(self, tiny_bert):
        splits = _tiny_dataset()
        encoded = encode_dataset(splits.test, tiny_bert.tokenizer, 32)
        batch = encoded.batch(np.array([0, 2]))
        assert len(batch) == 2
        assert np.array_equal(batch.input_ids[1], encoded.input_ids[2])


class TestFineTune:
    def test_history_structure(self, tiny_bert):
        splits = _tiny_dataset()
        config = FineTuneConfig(epochs=2, batch_size=8, max_length_cap=32)
        result = fine_tune(tiny_bert, splits.train, splits.test,
                           config=config, seed=0)
        assert len(result.history) == 3          # zero-shot + 2 epochs
        assert result.history[0].epoch == 0
        assert np.isnan(result.history[0].train_loss)
        assert result.history[0].seconds == 0.0
        assert all(r.seconds > 0 for r in result.history[1:])
        assert len(result.f1_curve()) == 3
        assert len(result.epoch_seconds()) == 2

    def test_empty_history_f1_raises(self):
        # Regression: best_f1/final_f1 used to fail with bare max()/
        # IndexError on a result with no recorded epochs.
        from repro.matching import FineTuneResult
        empty = FineTuneResult(classifier=None)
        with pytest.raises(ValueError, match="history is empty"):
            empty.best_f1
        with pytest.raises(ValueError, match="history is empty"):
            empty.final_f1

    def test_finetune_does_not_mutate_pretrained(self, tiny_bert):
        splits = _tiny_dataset()
        before = {name: value.copy() for name, value
                  in tiny_bert.backbone.state_dict().items()}
        fine_tune(tiny_bert, splits.train, splits.test,
                  FineTuneConfig(epochs=1, max_length_cap=32), seed=0)
        after = tiny_bert.backbone.state_dict()
        for name, value in before.items():
            assert np.array_equal(value, after[name])

    def test_deterministic_given_seed(self, tiny_bert):
        splits = _tiny_dataset()
        config = FineTuneConfig(epochs=1, max_length_cap=32)
        a = fine_tune(tiny_bert, splits.train, splits.test, config, seed=3)
        b = fine_tune(tiny_bert, splits.train, splits.test, config, seed=3)
        assert a.f1_curve() == b.f1_curve()

    def test_loss_decreases_on_train(self, tiny_bert):
        splits = _tiny_dataset(scale=0.06)
        config = FineTuneConfig(epochs=3, max_length_cap=32)
        result = fine_tune(tiny_bert, splits.train, splits.test, config,
                           seed=1)
        assert (result.history[-1].train_loss
                < result.history[1].train_loss + 0.2)

    def test_xlnet_finetunes(self, tiny_xlnet):
        splits = _tiny_dataset()
        result = fine_tune(tiny_xlnet, splits.train, splits.test,
                           FineTuneConfig(epochs=1, max_length_cap=32),
                           seed=0)
        assert len(result.history) == 2


class TestEntityMatcherAPI:
    def test_unknown_arch_raises(self):
        with pytest.raises(ValueError):
            EntityMatcher("gpt2")

    def test_predict_before_fit_raises(self, tiny_bert):
        matcher = EntityMatcher("bert", pretrained=tiny_bert)
        with pytest.raises(RuntimeError):
            matcher.match({"t": "a"}, {"t": "b"})

    def test_fit_evaluate_predict(self, tiny_bert):
        splits = _tiny_dataset()
        matcher = EntityMatcher(
            "bert", pretrained=tiny_bert,
            finetune_config=FineTuneConfig(epochs=1, max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        assert matcher.is_fitted
        metrics = matcher.evaluate(splits.test)
        assert 0.0 <= metrics.f1 <= 1.0
        predictions = matcher.predict(splits.test)
        assert set(np.unique(predictions)) <= {0, 1}
        assert len(predictions) == len(splits.test)

    def test_single_pair_probability(self, tiny_bert):
        splits = _tiny_dataset()
        matcher = EntityMatcher(
            "bert", pretrained=tiny_bert,
            finetune_config=FineTuneConfig(epochs=1, max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        pair = splits.test.pairs[0]
        p = matcher.match_probability(pair.record_a, pair.record_b)
        assert 0.0 <= p <= 1.0
        assert matcher.match(pair.record_a, pair.record_b) == (p >= 0.5)

    def test_match_accepts_plain_dicts(self, tiny_bert):
        splits = _tiny_dataset()
        matcher = EntityMatcher(
            "bert", pretrained=tiny_bert,
            finetune_config=FineTuneConfig(epochs=1, max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        result = matcher.match({"title": "apexon phone zx1 black"},
                               {"title": "apexon phone zx1 black"})
        assert isinstance(result, bool)
