"""Active-learning loop: sampling, seeding, label-budget accounting."""

import numpy as np
import pytest

from repro.data import load_benchmark, split_dataset
from repro.matching.active import (ActiveLearningConfig,
                                   active_learning_loop,
                                   uncertainty_sampling)
from repro.utils import child_rng


class _MagellanAdapter:
    """Wrap MagellanMatcher into the active-learning matcher protocol."""

    def __init__(self):
        from repro.baselines import MagellanMatcher
        self._matcher = MagellanMatcher(seed=0)

    def fit(self, train):
        self._matcher.fit(train, None)

    def predict(self, dataset):
        return self._matcher.predict(dataset)

    def predict_proba(self, dataset):
        features, _ = self._matcher._generator.transform(dataset)
        return self._matcher._model.predict_proba(features)

    def evaluate(self, dataset):
        return self._matcher.evaluate(dataset)


class TestUncertaintySampling:
    def test_picks_closest_to_half(self):
        probabilities = np.array([0.9, 0.5, 0.1, 0.55, 0.02])
        assert uncertainty_sampling(probabilities, 2, set()) == [1, 3]

    def test_excludes_labeled(self):
        probabilities = np.array([0.5, 0.51, 0.9])
        assert uncertainty_sampling(probabilities, 1, {0}) == [1]

    def test_fewer_available_than_requested(self):
        probabilities = np.array([0.5, 0.6])
        picked = uncertainty_sampling(probabilities, 5, {0})
        assert picked == [1]


class TestLoop:
    @pytest.fixture(scope="class")
    def splits(self):
        data = load_benchmark("dblp-acm", seed=17, scale=0.05)
        return split_dataset(data, child_rng(17, "split-al"))

    def test_label_budget_grows_by_batch(self, splits):
        config = ActiveLearningConfig(seed_size=20, batch_per_round=10,
                                      rounds=3)
        result = active_learning_loop(_MagellanAdapter, splits.train,
                                      splits.test, config)
        assert result.labels_used() == [20, 30, 40]
        assert len(result.f1_curve()) == 3
        assert all(0.0 <= f <= 1.0 for f in result.f1_curve())

    def test_seed_contains_both_classes(self, splits):
        config = ActiveLearningConfig(seed_size=16, batch_per_round=4,
                                      rounds=1)
        captured = {}

        class Spy(_MagellanAdapter):
            def fit(self, train):
                captured["labels"] = set(train.labels())
                super().fit(train)

        active_learning_loop(Spy, splits.train, splits.test, config)
        assert captured["labels"] == {0, 1}

    def test_seed_too_large_raises(self, splits):
        config = ActiveLearningConfig(seed_size=10 ** 6)
        with pytest.raises(ValueError):
            active_learning_loop(_MagellanAdapter, splits.train,
                                 splits.test, config)

    def test_more_labels_generally_help(self, splits):
        config = ActiveLearningConfig(seed_size=16, batch_per_round=24,
                                      rounds=4)
        result = active_learning_loop(_MagellanAdapter, splits.train,
                                      splits.test, config)
        # not strictly monotone, but the last round should not be far
        # below the first (sanity of the loop's accounting)
        assert result.final_f1 >= result.f1_curve()[0] - 0.25
