"""Data substrate: records, dirty transform, splits, io, generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (EMDataset, EntityPair, Record, benchmark_names,
                        dirty_record, load_benchmark, load_dataset,
                        make_dirty, save_dataset, split_dataset, table3_spec)
from repro.data import wordbank
from repro.data.generators import (GeneratorSpec, NoiseProfile,
                                   apply_text_noise, drift_code,
                                   scale_counts, typo)
from repro.utils import child_rng


class TestRecord:
    def test_missing_attribute_is_empty(self):
        record = Record({"title": "x"})
        assert record["nope"] == ""

    def test_text_blob_skips_empty(self):
        record = Record({"a": "hello", "b": "", "c": "world"})
        assert record.text_blob() == "hello world"

    def test_text_blob_attribute_subset(self):
        record = Record({"a": "hello", "b": "world"})
        assert record.text_blob(["b"]) == "world"

    def test_copy_is_independent(self):
        record = Record({"a": "x"})
        clone = record.copy()
        clone.values["a"] = "y"
        assert record["a"] == "x"


class TestEntityPair:
    def test_invalid_label_raises(self):
        with pytest.raises(ValueError):
            EntityPair(Record({}), Record({}), 2)


class TestEMDataset:
    def _dataset(self, n=10, positives=3):
        pairs = [EntityPair(Record({"t": f"a{i}"}), Record({"t": f"b{i}"}),
                            1 if i < positives else 0) for i in range(n)]
        return EMDataset("demo", "products", ["t"], pairs)

    def test_stats(self):
        ds = self._dataset()
        stats = ds.stats()
        assert stats.size == 10
        assert stats.num_matches == 3
        assert abs(stats.match_rate - 0.3) < 1e-9

    def test_slice_returns_dataset(self):
        ds = self._dataset()
        head = ds[:4]
        assert isinstance(head, EMDataset)
        assert len(head) == 4

    def test_subset(self):
        ds = self._dataset()
        sub = ds.subset([0, 2], "-sub")
        assert sub.name == "demo-sub"
        assert len(sub) == 2

    def test_serialization_attributes_default_schema(self):
        ds = self._dataset()
        assert ds.serialization_attributes() == ["t"]
        ds.text_attributes = ["t"]
        assert ds.serialization_attributes() == ["t"]


class TestDirty:
    def test_moved_values_land_in_title(self):
        rng = np.random.default_rng(0)
        record = Record({"title": "base", "brand": "acme", "price": "9"})
        out = dirty_record(record, "title", rng, move_probability=1.0)
        assert out["brand"] == ""
        assert out["price"] == ""
        assert "acme" in out["title"]
        assert "9" in out["title"]
        assert out["title"].startswith("base")

    def test_zero_probability_is_identity(self):
        rng = np.random.default_rng(0)
        record = Record({"title": "base", "brand": "acme"})
        out = dirty_record(record, "title", rng, move_probability=0.0)
        assert out.values == record.values

    def test_information_preserved(self):
        rng = np.random.default_rng(1)
        record = Record({"title": "t", "a": "one", "b": "two"})
        out = dirty_record(record, "title", rng)
        all_text = " ".join(out.values.values())
        for word in ("one", "two", "t"):
            assert word in all_text

    def test_make_dirty_renames_and_keeps_labels(self):
        pairs = [EntityPair(Record({"title": "x", "b": "y"}),
                            Record({"title": "x", "b": "y"}), 1)]
        ds = EMDataset("d", "products", ["title", "b"], pairs)
        dirty = make_dirty(ds, np.random.default_rng(0))
        assert dirty.name == "d-dirty"
        assert dirty.pairs[0].label == 1

    def test_make_dirty_invalid_title_raises(self):
        ds = EMDataset("d", "products", ["a"], [])
        with pytest.raises(ValueError):
            make_dirty(ds, np.random.default_rng(0), title_attribute="zz")


class TestSplits:
    def test_ratios_and_stratification(self):
        pairs = [EntityPair(Record({"t": str(i)}), Record({"t": str(i)}),
                            int(i < 20)) for i in range(100)]
        ds = EMDataset("d", "x", ["t"], pairs)
        splits = split_dataset(ds, np.random.default_rng(0))
        assert len(splits.train) == 60
        assert len(splits.validation) == 20
        assert len(splits.test) == 20
        for part in (splits.train, splits.validation, splits.test):
            assert abs(part.stats().match_rate - 0.2) < 0.05

    def test_no_overlap_and_complete(self):
        pairs = [EntityPair(Record({"t": str(i)}), Record({"t": str(i)}),
                            i % 4 == 0) for i in range(40)]
        ds = EMDataset("d", "x", ["t"], pairs)
        splits = split_dataset(ds, np.random.default_rng(1))
        seen = [p.record_a["t"] for s in (splits.train, splits.validation,
                                          splits.test) for p in s]
        assert sorted(seen) == sorted(p.record_a["t"] for p in pairs)

    def test_invalid_ratios_raise(self):
        ds = EMDataset("d", "x", ["t"], [])
        with pytest.raises(ValueError):
            split_dataset(ds, np.random.default_rng(0),
                          ratios=(0.5, 0.2, 0.2))


class TestIO:
    def test_roundtrip(self, tmp_path):
        pairs = [EntityPair(Record({"t": "a, with comma", "p": "1"}),
                            Record({"t": "b", "p": ""}), 1)]
        ds = EMDataset("rt", "products", ["t", "p"], pairs,
                       text_attributes=["t"])
        save_dataset(ds, tmp_path / "d.csv")
        loaded = load_dataset(tmp_path / "d.csv")
        assert loaded.name == "rt"
        assert loaded.text_attributes == ["t"]
        assert loaded.pairs[0].record_a["t"] == "a, with comma"
        assert loaded.pairs[0].label == 1


class TestWordbank:
    def test_canonical_maps_synonyms(self):
        assert wordbank.canonical("smartphone") == "phone"
        assert wordbank.canonical("unknownword") == "unknownword"

    def test_sample_synonym_stays_in_group(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            word = wordbank.sample_synonym("phone", rng, p_substitute=1.0)
            assert wordbank.canonical(word) == "phone"

    def test_sample_synonym_zero_probability(self):
        rng = np.random.default_rng(0)
        assert wordbank.sample_synonym("phone", rng, 0.0) == "phone"

    def test_all_content_words_nonempty(self):
        words = wordbank.all_content_words()
        assert len(words) > 100
        assert "phone" in words


class TestNoise:
    def test_typo_single_edit_distance(self):
        from repro.baselines.similarity import levenshtein_distance
        rng = np.random.default_rng(0)
        for _ in range(30):
            word = "wireless"
            mutated = typo(word, rng)
            assert levenshtein_distance(word, mutated) <= 2

    def test_typo_short_words_untouched(self):
        rng = np.random.default_rng(0)
        assert typo("ab", rng) == "ab"

    def test_drift_code_preserves_content(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            out = drift_code("zx4821", rng, probability=1.0)
            compact = out.lower().replace("-", "").replace(" ", "")
            assert compact == "zx4821"

    def test_apply_text_noise_empty_safe(self):
        rng = np.random.default_rng(0)
        assert apply_text_noise("word", NoiseProfile(), rng)

    def test_scale_counts_monotone(self):
        spec = GeneratorSpec("s", "d", size=1000, num_matches=100)
        size_small, match_small = scale_counts(spec, 0.1)
        size_full, match_full = scale_counts(spec, 1.0)
        assert size_small < size_full
        assert match_small <= match_full
        assert match_small < size_small

    def test_scale_counts_invalid(self):
        spec = GeneratorSpec("s", "d", size=100, num_matches=10)
        with pytest.raises(ValueError):
            scale_counts(spec, 0.0)


class TestCatalog:
    def test_five_benchmarks(self):
        assert sorted(benchmark_names()) == sorted([
            "abt-buy", "itunes-amazon", "walmart-amazon", "dblp-acm",
            "dblp-scholar"])

    def test_table3_specs_match_paper(self):
        assert table3_spec("abt-buy").size == 9575
        assert table3_spec("itunes-amazon").num_matches == 132
        assert table3_spec("dblp-scholar").size == 28707

    @pytest.mark.parametrize("name", ["abt-buy", "itunes-amazon",
                                      "walmart-amazon", "dblp-acm",
                                      "dblp-scholar"])
    def test_generation_deterministic(self, name):
        a = load_benchmark(name, seed=3, scale=0.02)
        b = load_benchmark(name, seed=3, scale=0.02)
        assert len(a) == len(b)
        for pa, pb in zip(a.pairs, b.pairs):
            assert pa.label == pb.label
            assert pa.record_a.values == pb.record_a.values

    def test_different_seeds_differ(self):
        a = load_benchmark("dblp-acm", seed=1, scale=0.02)
        b = load_benchmark("dblp-acm", seed=2, scale=0.02)
        assert any(pa.record_a.values != pb.record_a.values
                   for pa, pb in zip(a.pairs, b.pairs))

    def test_paper_variant_dirty_suffix(self):
        ds = load_benchmark("walmart-amazon", seed=0, scale=0.02)
        assert ds.name.endswith("-dirty")

    def test_clean_variant(self):
        ds = load_benchmark("walmart-amazon", seed=0, scale=0.02,
                            variant="clean")
        assert not ds.name.endswith("-dirty")

    def test_abt_buy_textual_uses_description_only(self):
        ds = load_benchmark("abt-buy", seed=0, scale=0.02)
        assert ds.serialization_attributes() == ["description"]

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            load_benchmark("nope")

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            load_benchmark("abt-buy", variant="weird")

    def test_match_rate_roughly_preserved_at_scale(self):
        spec = table3_spec("dblp-acm")
        ds = load_benchmark("dblp-acm", seed=5, scale=0.05)
        expected = spec.num_matches / spec.size
        assert abs(ds.stats().match_rate - expected) < 0.05

    def test_matches_share_more_tokens_than_negatives(self):
        ds = load_benchmark("dblp-acm", seed=9, scale=0.05)
        attrs = ds.serialization_attributes()
        def overlap(pair):
            a = set(pair.record_a.text_blob(attrs).split())
            b = set(pair.record_b.text_blob(attrs).split())
            return len(a & b) / max(len(a | b), 1)
        pos = np.mean([overlap(p) for p in ds.pairs if p.label == 1])
        neg = np.mean([overlap(p) for p in ds.pairs if p.label == 0])
        assert pos > neg + 0.15


@given(st.integers(0, 2 ** 31 - 1))
@settings(max_examples=10, deadline=None)
def test_generator_never_crashes_any_seed(seed):
    ds = load_benchmark("itunes-amazon", seed=seed, scale=0.05)
    assert len(ds) > 0
    assert 0 < ds.stats().num_matches < len(ds)
