"""Generator calibration: the properties that make the five datasets
reproduce the paper's difficulty ordering."""

import numpy as np
import pytest

from repro.data import load_benchmark
from repro.data.generators import universe
from repro.data.generators._base import NoiseProfile
from repro.matching.serializer import pair_texts
from repro.utils import child_rng


def _overlap_auc(dataset) -> float:
    """AUC of word-jaccard as a match score — a proxy for how solvable
    the dataset is by pure surface similarity."""
    attrs = dataset.serialization_attributes()
    scores, labels = [], []
    for pair in dataset.pairs:
        a, b = pair_texts(pair, attrs)
        sa, sb = set(a.split()), set(b.split())
        scores.append(len(sa & sb) / max(len(sa | sb), 1))
        labels.append(pair.label)
    scores = np.array(scores)
    labels = np.array(labels)
    pos, neg = scores[labels == 1], scores[labels == 0]
    return float((pos[:, None] > neg[None, :]).mean()
                 + 0.5 * (pos[:, None] == neg[None, :]).mean())


class TestDifficultyOrdering:
    def test_citation_data_easier_than_products(self):
        dblp = load_benchmark("dblp-acm", seed=5, scale=0.06)
        walmart = load_benchmark("walmart-amazon", seed=5, scale=0.06)
        abt = load_benchmark("abt-buy", seed=5, scale=0.06)
        auc_dblp = _overlap_auc(dblp)
        assert auc_dblp > _overlap_auc(walmart)
        assert auc_dblp > _overlap_auc(abt)

    def test_dblp_acm_surface_solvable(self):
        # Magellan reaches 91.9 on the real DBLP-ACM: surface overlap
        # must be a strong signal on the analogue too.
        assert _overlap_auc(load_benchmark("dblp-acm", seed=5,
                                           scale=0.06)) > 0.9

    def test_hard_products_not_surface_solvable(self):
        # The paper's hard datasets break surface methods (Magellan 33-37).
        assert _overlap_auc(load_benchmark("abt-buy", seed=5,
                                           scale=0.06)) < 0.9


class TestProductUniverse:
    def test_perturbed_product_changes_code(self, rng):
        for _ in range(20):
            entity = universe.sample_product(rng)
            similar = universe.perturb_product(entity, rng)
            assert similar.model_code != entity.model_code
            assert similar.brand == entity.brand  # still a hard negative

    def test_match_views_share_code_modulo_format(self, rng):
        profile = NoiseProfile(p_code_drift=1.0, p_missing_attr=0.0)
        entity = universe.sample_product(rng)
        schema = ["title", "modelno"]
        a = universe.render_product(entity, schema, profile, rng)
        compact = a["modelno"].lower().replace("-", "").replace(" ", "")
        assert compact == entity.model_code

    def test_render_respects_schema(self, rng):
        entity = universe.sample_product(rng)
        record = universe.render_product(
            entity, ["title", "price"], NoiseProfile(p_missing_attr=0.0),
            rng)
        assert list(record.values) == ["title", "price"]
        assert record["price"]

    def test_description_contains_discriminative_slots(self, rng):
        entity = universe.sample_product(rng)
        profile = NoiseProfile(p_synonym=0.0, p_typo=0.0, p_drop_word=0.0,
                               p_missing_attr=0.0)
        record = universe.render_product(entity, ["description"], profile,
                                         rng)
        text = record["description"]
        assert entity.model_code in text
        assert str(entity.capacity) in text


class TestMusicUniverse:
    def test_perturbation_changes_some_slot(self, rng):
        for _ in range(20):
            entity = universe.sample_music(rng)
            similar = universe.perturb_music(entity, rng)
            assert (entity.song, entity.artist, entity.album,
                    entity.released) != (similar.song, similar.artist,
                                         similar.album, similar.released)

    def test_render_time_formats(self, rng):
        entity = universe.sample_music(rng)
        formats = set()
        for _ in range(30):
            record = universe.render_music(
                entity, ["time"], NoiseProfile(p_missing_attr=0.0), rng)
            formats.add(":" in record["time"])
        assert formats == {True, False}  # both mm:ss and seconds occur


class TestCitationUniverse:
    def test_perturbed_citation_changes_title(self, rng):
        changed = 0
        for _ in range(30):
            entity = universe.sample_citation(rng)
            similar = universe.perturb_citation(entity, rng)
            if similar.title != entity.title:
                changed += 1
        assert changed >= 25   # topic always changes; template may collide

    def test_author_abbreviation(self, rng):
        entity = universe.sample_citation(rng)
        profile = NoiseProfile(p_missing_attr=0.0, p_typo=0.0)
        record = universe.render_citation(entity, ["authors"], profile,
                                          rng, abbreviate_probability=1.0)
        first_author = record["authors"].split(",")[0].strip()
        assert len(first_author.split()[0]) == 1  # "u brunner" style


class TestDirtyVariantProperties:
    @pytest.mark.parametrize("name,title", [
        ("walmart-amazon", "title"),
        ("itunes-amazon", "song_name"),
        ("dblp-scholar", "title"),
    ])
    def test_dirty_moves_but_preserves_tokens(self, name, title):
        clean = load_benchmark(name, seed=4, scale=0.04, variant="clean")
        dirty = load_benchmark(name, seed=4, scale=0.04, variant="dirty")
        # same underlying pairs: token multiset per record is preserved
        for pc, pd in list(zip(clean.pairs, dirty.pairs))[:40]:
            clean_tokens = sorted(" ".join(
                pc.record_a.values.values()).split())
            dirty_tokens = sorted(" ".join(
                pd.record_a.values.values()).split())
            assert clean_tokens == dirty_tokens
            assert pc.label == pd.label

    def test_dirty_actually_blanks_attributes(self):
        clean = load_benchmark("walmart-amazon", seed=4, scale=0.04,
                               variant="clean")
        dirty = load_benchmark("walmart-amazon", seed=4, scale=0.04,
                               variant="dirty")
        def blanks(dataset):
            return sum(1 for p in dataset.pairs
                       for r in (p.record_a, p.record_b)
                       for a in dataset.schema if not r[a])
        assert blanks(dirty) > blanks(clean)
