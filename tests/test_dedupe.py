"""End-to-end deduplication: clustering, catalogs, pipeline, artifacts.

The golden test recovers a seeded catalog's gold clustering exactly
(adjusted Rand 1.0); the determinism test demands byte-identical
cluster artifacts across runs.  Union-find is pinned to the transitive
closure of the edge set by an independent BFS oracle under hypothesis.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import MinHashLSHBlocker, TokenBlocker
from repro.data.generators._base import NoiseProfile
from repro.dedupe import (Catalog, DedupeConfig, DedupeResult,
                          SimilarityEngine, UnionFind,
                          adjusted_rand_index, catalog_noise_profile,
                          connected_components, dedupe_records,
                          generate_catalog, load_clusters, write_clusters)
from repro.obs import MetricsRegistry

pytestmark = pytest.mark.blocking

#: The golden configuration: a gentle-noise catalog whose gold
#: clustering the blend scorer recovers exactly at threshold 0.55
#: (verified to hold with margin on both neighboring thresholds).
GOLDEN_PROFILE = NoiseProfile(p_synonym=0.1, p_typo=0.01,
                              p_drop_word=0.03, p_missing_attr=0.0,
                              p_code_drift=0.2)
GOLDEN_SEED = 2
GOLDEN_THRESHOLD = 0.55


def _golden_run(tmp_path, name):
    catalog = generate_catalog(150, seed=GOLDEN_SEED,
                               profile=GOLDEN_PROFILE)
    result = dedupe_records(
        catalog.records, MinHashLSHBlocker(),
        SimilarityEngine(scorer="blend"),
        DedupeConfig(threshold=GOLDEN_THRESHOLD),
        registry=MetricsRegistry())
    path = tmp_path / name
    write_clusters(path, result)
    return catalog, result, path


def _bfs_closure(size, edges):
    """Independent transitive-closure oracle: BFS per component."""
    adjacency = {i: set() for i in range(size)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    labels = [None] * size
    for start in range(size):
        if labels[start] is not None:
            continue
        frontier = [start]
        component = []
        while frontier:
            node = frontier.pop()
            if labels[node] is not None:
                continue
            labels[node] = start  # start is the minimum unvisited index
            component.append(node)
            frontier.extend(adjacency[node])
    return labels


class TestUnionFind:
    def test_initially_disjoint(self):
        forest = UnionFind(4)
        assert forest.labels() == [0, 1, 2, 3]
        assert not forest.connected(0, 1)

    def test_union_merges(self):
        forest = UnionFind(4)
        assert forest.union(1, 3) is True
        assert forest.union(3, 1) is False  # already joined
        assert forest.connected(1, 3)
        assert forest.labels() == [0, 1, 2, 1]

    def test_labels_are_min_index(self):
        forest = UnionFind(5)
        forest.union(4, 2)
        forest.union(2, 3)
        assert forest.labels() == [0, 1, 2, 2, 2]

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            UnionFind(-1)

    @settings(max_examples=60, deadline=None)
    @given(size=st.integers(1, 30),
           data=st.data())
    def test_clustering_equals_transitive_closure(self, size, data):
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
            max_size=40))
        assert connected_components(size, edges) == _bfs_closure(size,
                                                                 edges)

    @settings(max_examples=40, deadline=None)
    @given(size=st.integers(1, 20),
           seed=st.integers(0, 2 ** 16),
           data=st.data())
    def test_labels_independent_of_edge_order(self, size, seed, data):
        edges = data.draw(st.lists(
            st.tuples(st.integers(0, size - 1), st.integers(0, size - 1)),
            max_size=30))
        shuffled = list(edges)
        np.random.default_rng(seed).shuffle(shuffled)
        assert (connected_components(size, edges)
                == connected_components(size, shuffled))


class TestAdjustedRandIndex:
    def test_identical_clusterings(self):
        assert adjusted_rand_index([0, 0, 1, 1], [0, 0, 1, 1]) == 1.0

    def test_relabeled_clusterings_still_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [7, 7, 3, 3]) == 1.0

    def test_disagreement_below_one(self):
        assert adjusted_rand_index([0, 0, 1, 1], [0, 1, 0, 1]) < 1.0

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            adjusted_rand_index([0], [0, 1])

    def test_trivial_sizes(self):
        assert adjusted_rand_index([], []) == 1.0
        assert adjusted_rand_index([0], [5]) == 1.0

    @settings(max_examples=40, deadline=None)
    @given(labels=st.lists(st.integers(0, 5), min_size=2, max_size=30),
           other=st.data())
    def test_bounded_and_symmetric(self, labels, other):
        second = other.draw(st.lists(st.integers(0, 5),
                                     min_size=len(labels),
                                     max_size=len(labels)))
        ari = adjusted_rand_index(labels, second)
        assert -1.0 <= ari <= 1.0
        assert ari == pytest.approx(adjusted_rand_index(second, labels))


class TestGenerateCatalog:
    def test_deterministic_for_seed(self):
        a = generate_catalog(80, seed=9)
        b = generate_catalog(80, seed=9)
        assert [r.values for r in a.records] == [r.values
                                                 for r in b.records]
        assert a.entity_ids == b.entity_ids

    def test_size_and_metadata(self):
        catalog = generate_catalog(120, seed=1)
        assert len(catalog) == 120
        assert catalog.meta["num_records"] == 120
        assert catalog.meta["num_entities"] == len(set(catalog.entity_ids))

    def test_zero_duplicate_rate_all_unique(self):
        catalog = generate_catalog(50, seed=3, duplicate_rate=0.0)
        assert catalog.meta["num_entities"] == 50
        assert catalog.gold_pairs() == set()

    def test_gold_pairs_are_ordered_views_of_same_entity(self):
        catalog = generate_catalog(100, seed=4)
        pairs = catalog.gold_pairs()
        assert pairs
        for i, j in pairs:
            assert i < j
            assert catalog.entity_ids[i] == catalog.entity_ids[j]

    def test_gold_labels_match_entity_partition(self):
        catalog = generate_catalog(100, seed=4)
        assert adjusted_rand_index(catalog.gold_labels(),
                                   catalog.entity_ids) == 1.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            generate_catalog(0)
        with pytest.raises(ValueError):
            generate_catalog(10, duplicate_rate=1.0)
        with pytest.raises(ValueError):
            generate_catalog(10, max_duplicates=0)


class TestSimilarityEngine:
    def test_identical_records_score_high(self):
        record = {"title": "apexon phone zx100 black"}
        outcomes = SimilarityEngine().score_pairs([(record, record)])
        assert outcomes[0].probability > 0.9
        assert outcomes[0].matched

    def test_disjoint_records_score_low(self):
        outcomes = SimilarityEngine(scorer="jaccard").score_pairs(
            [({"title": "aaa bbb"}, {"title": "ccc ddd"})])
        assert outcomes[0].probability == 0.0
        assert not outcomes[0].matched

    def test_keys_become_outcome_indices(self):
        record = {"title": "x"}
        outcomes = SimilarityEngine().score_pairs(
            [(record, record)] * 3, keys=[7, 5, 9])
        assert [o.index for o in outcomes] == [7, 5, 9]

    def test_key_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SimilarityEngine().score_pairs([({"t": "a"}, {"t": "b"})],
                                           keys=[1, 2])

    def test_per_pair_failure_degrades_not_raises(self):
        good = {"title": "fine"}
        outcomes = SimilarityEngine().score_pairs(
            [(good, good), (None, good)])
        assert not outcomes[0].degraded
        assert outcomes[1].degraded
        assert outcomes[1].error
        assert outcomes[1].probability == 0.0

    def test_unknown_scorer_rejected(self):
        with pytest.raises(ValueError):
            SimilarityEngine(scorer="cosine")


class TestDedupePipeline:
    def _run(self, threshold=0.5, **kwargs):
        catalog = generate_catalog(200, seed=6)
        registry = MetricsRegistry()
        result = dedupe_records(
            catalog.records, MinHashLSHBlocker(),
            SimilarityEngine(scorer="jaccard"),
            DedupeConfig(threshold=threshold, **kwargs),
            registry=registry)
        return catalog, result, registry

    def test_entity_ids_cover_every_record(self):
        catalog, result, _ = self._run()
        assert len(result.entity_ids) == len(catalog)
        assert result.num_records == len(catalog)

    def test_clusters_partition_records(self):
        _, result, _ = self._run()
        members = [i for cluster in result.clusters().values()
                   for i in cluster]
        assert sorted(members) == list(range(result.num_records))

    def test_streaming_high_water_bounded(self):
        _, result, _ = self._run(candidate_batch=64)
        assert 0 < result.max_candidate_batch <= 64
        assert result.batches >= result.num_candidates // 64

    def test_metrics_recorded(self):
        _, result, registry = self._run()
        snapshot = registry.snapshot()
        assert (snapshot["blocking.candidates"]["value"]
                == result.num_candidates)
        assert (snapshot["dedupe.pairs_scored"]["value"]
                == result.num_candidates)
        assert snapshot["dedupe.entities"]["value"] == result.num_entities

    def test_progress_callback_invoked(self):
        catalog = generate_catalog(100, seed=6)
        calls = []
        dedupe_records(catalog.records, MinHashLSHBlocker(),
                       SimilarityEngine(scorer="jaccard"),
                       DedupeConfig(candidate_batch=32),
                       registry=MetricsRegistry(),
                       cb=lambda batch, scored: calls.append((batch,
                                                              scored)))
        assert calls
        assert [batch for batch, _ in calls] == list(range(len(calls)))

    def test_matched_pairs_share_entity(self):
        # Transitivity: every accepted match edge ends up intra-cluster.
        catalog = generate_catalog(150, seed=8)
        blocker = MinHashLSHBlocker()
        engine = SimilarityEngine(scorer="jaccard")
        result = dedupe_records(catalog.records, blocker, engine,
                                DedupeConfig(threshold=0.6),
                                registry=MetricsRegistry())
        for batch in blocker.iter_candidates(catalog.records):
            pairs = [(catalog.records[c.index_a],
                      catalog.records[c.index_b]) for c in batch]
            for candidate, outcome in zip(
                    batch, engine.score_pairs(pairs, threshold=0.6)):
                if outcome.matched:
                    assert (result.entity_ids[candidate.index_a]
                            == result.entity_ids[candidate.index_b])

    def test_works_with_token_blocker(self):
        catalog = generate_catalog(100, seed=6)
        result = dedupe_records(catalog.records,
                                TokenBlocker(max_token_frequency=0.1),
                                SimilarityEngine(scorer="jaccard"),
                                registry=MetricsRegistry())
        assert result.num_entities <= result.num_records

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DedupeConfig(threshold=1.5)
        with pytest.raises(ValueError):
            DedupeConfig(candidate_batch=0)


class TestGoldenEndToEnd:
    def test_recovers_gold_clustering_exactly(self, tmp_path):
        catalog, result, _ = _golden_run(tmp_path, "clusters.json")
        assert adjusted_rand_index(result.entity_ids,
                                   catalog.gold_labels()) == 1.0
        assert result.num_entities == catalog.meta["num_entities"]

    def test_two_runs_byte_identical(self, tmp_path):
        _, _, path_a = _golden_run(tmp_path, "a.json")
        _, _, path_b = _golden_run(tmp_path, "b.json")
        assert path_a.read_bytes() == path_b.read_bytes()


class TestClusterArtifacts:
    def test_roundtrip(self, tmp_path):
        _, result, path = _golden_run(tmp_path, "clusters.json")
        payload = load_clusters(path)
        assert payload["entity_ids"] == result.entity_ids
        assert payload["num_entities"] == result.num_entities
        assert payload["clusters"][str(result.entity_ids[0])]

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 99}))
        with pytest.raises(ValueError):
            load_clusters(path)

    def test_artifact_is_canonical_json(self, tmp_path):
        _, _, path = _golden_run(tmp_path, "clusters.json")
        text = path.read_text()
        payload = json.loads(text)
        canonical = json.dumps(payload, sort_keys=True,
                               separators=(",", ":")) + "\n"
        assert text == canonical


class TestBenchSmoke:
    def test_smoke_report_valid_and_gated(self):
        from repro.dedupe.bench import (run_blocking_benchmark,
                                        validate_report)
        report = run_blocking_benchmark(smoke=True, log=lambda *_: None)
        assert validate_report(report) == []
        assert report["acceptance"]["enforced"] is False
        assert set(report["comparison"]) == {"token",
                                             "sorted_neighborhood",
                                             "tfidf", "minhash_lsh"}
        # smoke scale already clears the gate floors
        assert report["acceptance"]["passed"] is True
        assert report["dedupe"]["streamed"] is True

    def test_write_report_rejects_invalid(self, tmp_path):
        from repro.dedupe.bench import write_report
        with pytest.raises(ValueError):
            write_report({"benchmark": "blocking"},
                         tmp_path / "bad.json")


class TestMatchEngineIntegration:
    def test_dedupe_through_transformer_engine(self, tiny_bert):
        from repro.data import load_benchmark, split_dataset
        from repro.matching import EntityMatcher, FineTuneConfig
        from repro.utils import child_rng
        data = load_benchmark("dblp-acm", seed=7, scale=0.04)
        splits = split_dataset(data, child_rng(7, "split", "dblp-acm"))
        matcher = EntityMatcher(
            "bert", pretrained=tiny_bert,
            finetune_config=FineTuneConfig(epochs=1, max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        catalog = generate_catalog(30, seed=2, profile=GOLDEN_PROFILE)
        result = dedupe_records(catalog.records, MinHashLSHBlocker(),
                                matcher.engine(),
                                DedupeConfig(threshold=0.5),
                                registry=MetricsRegistry())
        assert len(result.entity_ids) == len(catalog)
        assert result.num_candidates > 0
