"""Blocking: the candidate-generation family behind ``repro dedupe``.

Covers the original token / sorted-neighborhood blockers, the TF-IDF
cosine and MinHash-LSH additions, the streaming ``Blocker`` protocol
(linkage and self-join), and the hypothesis property suite: determinism,
permutation invariance up to index relabeling, the analytic (b, r)
collision curve, the LSH superset guarantee at Jaccard 1, and
range-safety of ``evaluate_blocking`` on arbitrary inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Record
from repro.data.blocking import (BlockingQuality, CandidatePair,
                                 MinHashLSHBlocker,
                                 SortedNeighborhoodBlocker, TfIdfBlocker,
                                 TokenBlocker, evaluate_blocking)
from repro.data.generators import universe
from repro.data.generators._base import NoiseProfile

pytestmark = pytest.mark.blocking


def _records():
    a = [Record({"title": "apexon phone zx100 black"}),
         Record({"title": "novatek laptop nv200 silver"}),
         Record({"title": "zenix camera zc300 red"})]
    b = [Record({"title": "apexon smartphone zx100"}),
         Record({"title": "novatek notebook nv200"}),
         Record({"title": "lumora watch lw400"})]
    return a, b


class TestTokenBlocker:
    def test_finds_shared_token_pairs(self):
        a, b = _records()
        pairs = TokenBlocker(max_token_frequency=1.0).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found       # shares "apexon", "zx100"
        assert (1, 1) in found       # shares "novatek", "nv200"
        assert (2, 2) not in found   # no shared tokens

    def test_min_shared_filters(self):
        a, b = _records()
        pairs = TokenBlocker(max_token_frequency=1.0,
                             min_shared=2).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found
        assert all(i == j for i, j in found)

    def test_frequency_cut_drops_stopwords(self):
        a = [Record({"title": f"the item {i}"}) for i in range(10)]
        b = [Record({"title": f"the product {i}"}) for i in range(10)]
        pairs = TokenBlocker(max_token_frequency=0.3).candidates(a, b)
        # "the" occurs everywhere and must not pair everything
        assert len(pairs) < 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBlocker(max_token_frequency=0.0)
        with pytest.raises(ValueError):
            TokenBlocker(min_shared=0)

    def test_attribute_subset(self):
        a = [Record({"title": "x", "brand": "shared"})]
        b = [Record({"title": "y", "brand": "shared"})]
        with_brand = TokenBlocker(max_token_frequency=1.0).candidates(a, b)
        title_only = TokenBlocker(attributes=["title"],
                                  max_token_frequency=1.0).candidates(a, b)
        assert with_brand and not title_only


class TestSortedNeighborhood:
    def test_nearby_keys_paired(self):
        a = [Record({"title": "aaa one"}), Record({"title": "zzz far"})]
        b = [Record({"title": "aab two"}), Record({"title": "mmm mid"})]
        pairs = SortedNeighborhoodBlocker("title", window=1).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found

    def test_window_bounds_candidates(self):
        a = [Record({"title": f"{chr(97 + i)} item"}) for i in range(10)]
        b = [Record({"title": f"{chr(97 + i)} thing"}) for i in range(10)]
        small = SortedNeighborhoodBlocker("title", window=1).candidates(a, b)
        large = SortedNeighborhoodBlocker("title", window=8).candidates(a, b)
        assert len(small) < len(large)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker("title", window=0)


class TestBlockingQuality:
    def test_perfect_blocking(self):
        from repro.data.blocking import CandidatePair
        candidates = [CandidatePair(0, 0), CandidatePair(1, 1)]
        quality = evaluate_blocking(candidates, {(0, 0), (1, 1)}, 10, 10)
        assert quality.pairs_completeness == 1.0
        assert quality.reduction_ratio == 1.0 - 2 / 100
        assert "PC 1.00" in str(quality)

    def test_missing_matches_lower_completeness(self):
        from repro.data.blocking import CandidatePair
        quality = evaluate_blocking([CandidatePair(0, 0)],
                                    {(0, 0), (5, 5)}, 10, 10)
        assert quality.pairs_completeness == 0.5

    def test_token_blocking_on_generated_universe(self):
        rng = np.random.default_rng(0)
        profile = NoiseProfile(p_missing_attr=0.0)
        schema = ["title", "brand", "modelno"]
        entities = [universe.sample_product(rng) for _ in range(30)]
        a = [universe.render_product(e, schema, profile, rng)
             for e in entities]
        b = [universe.render_product(e, schema, profile, rng)
             for e in entities]
        truth = {(i, i) for i in range(30)}
        pairs = TokenBlocker(max_token_frequency=0.5).candidates(a, b)
        quality = evaluate_blocking(pairs, truth, 30, 30)
        # two noisy views of the same entity share tokens almost always
        assert quality.pairs_completeness > 0.9
        assert quality.reduction_ratio > 0.3


def _catalog_records(n=40, seed=0):
    rng = np.random.default_rng(seed)
    profile = NoiseProfile(p_missing_attr=0.0)
    schema = ["title", "brand", "modelno"]
    return [universe.render_product(universe.sample_product(rng),
                                    schema, profile, rng)
            for _ in range(n)]


def _pair_set(candidates):
    return {(p.index_a, p.index_b) for p in candidates}


_ALL_BLOCKERS = [
    lambda: TokenBlocker(max_token_frequency=1.0),
    lambda: SortedNeighborhoodBlocker("title", window=3),
    lambda: TfIdfBlocker(top_k=5, threshold=0.05),
    lambda: MinHashLSHBlocker(num_permutations=32, band_size=2, seed=0),
]


class TestBlockerProtocol:
    @pytest.mark.parametrize("make", _ALL_BLOCKERS)
    def test_iter_candidates_batches_are_bounded(self, make):
        records = _catalog_records(30)
        batches = list(make().iter_candidates(records, batch_size=7))
        assert all(1 <= len(batch) <= 7 for batch in batches)

    @pytest.mark.parametrize("make", _ALL_BLOCKERS)
    def test_iter_candidates_flattens_to_candidates(self, make):
        records = _catalog_records(30)
        flat = [p for b in make().iter_candidates(records, batch_size=7)
                for p in b]
        assert flat == make().candidates(records)

    @pytest.mark.parametrize("make", _ALL_BLOCKERS)
    def test_self_join_pairs_are_ordered_and_distinct(self, make):
        records = _catalog_records(30)
        pairs = make().candidates(records)
        assert all(p.index_a < p.index_b for p in pairs)
        assert len(pairs) == len(_pair_set(pairs))

    @pytest.mark.parametrize("make", _ALL_BLOCKERS)
    def test_linkage_mode_still_works(self, make):
        a = _catalog_records(15, seed=1)
        b = _catalog_records(15, seed=2)
        pairs = make().candidates(a, b)
        assert all(0 <= p.index_a < 15 and 0 <= p.index_b < 15
                   for p in pairs)

    def test_invalid_batch_size(self):
        blocker = TokenBlocker(max_token_frequency=1.0)
        with pytest.raises(ValueError):
            list(blocker.iter_candidates(_catalog_records(5),
                                         batch_size=0))

    @pytest.mark.parametrize("make", _ALL_BLOCKERS)
    def test_empty_collection(self, make):
        assert make().candidates([]) == []


class TestSortedNeighborhoodRegressions:
    def test_plain_dict_missing_key_attribute(self):
        # Regression: _key used to raise a raw KeyError on mappings
        # without the key attribute.
        records = [{"title": "alpha"}, {"name": "no title here"},
                   {"title": "alpho"}]
        pairs = SortedNeighborhoodBlocker("title",
                                          window=2).candidates(records)
        assert (0, 2) in _pair_set(pairs)

    def test_record_missing_key_attribute(self):
        records = [Record({"title": "alpha"}), Record({"brand": "x"}),
                   Record({"title": "alpho"})]
        pairs = SortedNeighborhoodBlocker("title",
                                          window=2).candidates(records)
        assert (0, 2) in _pair_set(pairs)

    def test_none_value_treated_as_empty_key(self):
        records = [{"title": None}, {"title": "beta"}]
        pairs = SortedNeighborhoodBlocker("title",
                                          window=1).candidates(records)
        assert _pair_set(pairs) == {(0, 1)}


class TestTfIdfBlocker:
    def test_identical_records_are_top_neighbors(self):
        records = _catalog_records(20)
        doubled = records + records
        pairs = _pair_set(TfIdfBlocker(top_k=3).candidates(doubled))
        for i in range(20):
            assert (i, i + 20) in pairs

    def test_threshold_filters_weak_pairs(self):
        records = _catalog_records(30)
        loose = TfIdfBlocker(top_k=30, threshold=0.01).candidates(records)
        tight = TfIdfBlocker(top_k=30, threshold=0.6).candidates(records)
        assert _pair_set(tight) <= _pair_set(loose)
        assert len(tight) < len(loose)

    def test_top_k_bounds_candidate_volume(self):
        records = _catalog_records(30)
        few = TfIdfBlocker(top_k=1, threshold=0.0).candidates(records)
        many = TfIdfBlocker(top_k=20, threshold=0.0).candidates(records)
        assert len(few) <= len(many)
        # each record keeps at most top_k neighbors (ties aside)
        assert len(few) <= 30 * 2

    def test_disjoint_vocabulary_never_paired(self):
        records = [Record({"title": "aaa bbb"}),
                   Record({"title": "ccc ddd"})]
        assert TfIdfBlocker(threshold=0.0).candidates(records) == []

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TfIdfBlocker(top_k=0)
        with pytest.raises(ValueError):
            TfIdfBlocker(threshold=1.5)


class TestMinHashLSH:
    def test_identical_records_always_candidates(self):
        # J=1 pairs have identical shingle sets, hence identical
        # signatures, hence a guaranteed band collision.
        records = _catalog_records(25)
        doubled = records + records
        pairs = _pair_set(MinHashLSHBlocker(seed=3).candidates(doubled))
        for i in range(25):
            assert (i, i + 25) in pairs

    def test_empty_records_never_candidates(self):
        records = [Record({"title": ""}), Record({"title": ""}),
                   Record({"title": "zenix camera zc300"})]
        assert MinHashLSHBlocker().candidates(records) == []

    def test_collision_probability_monotone_in_jaccard(self):
        blocker = MinHashLSHBlocker(num_permutations=128, band_size=4)
        grid = [i / 50 for i in range(51)]
        curve = [blocker.collision_probability(s) for s in grid]
        assert all(a <= b for a, b in zip(curve, curve[1:]))
        assert curve[0] == 0.0 and curve[-1] == 1.0

    def test_collision_curve_sharpens_with_band_size(self):
        # More rows per band → the S-curve shifts right (stricter).
        loose = MinHashLSHBlocker(num_permutations=128, band_size=2)
        strict = MinHashLSHBlocker(num_permutations=128, band_size=8)
        assert (loose.collision_probability(0.3)
                > strict.collision_probability(0.3))

    def test_jaccard_at_inverts_collision_probability(self):
        blocker = MinHashLSHBlocker(num_permutations=128, band_size=4)
        for p in (0.05, 0.5, 0.95):
            s = blocker.jaccard_at(p)
            assert blocker.collision_probability(s) == pytest.approx(p)

    def test_signature_agreement_estimates_jaccard(self):
        # Two token sets with known overlap: the fraction of agreeing
        # signature rows estimates their Jaccard similarity.
        shared = " ".join(f"tok{i}" for i in range(30))
        extra_a = " ".join(f"aaa{i}" for i in range(10))
        extra_b = " ".join(f"bbb{i}" for i in range(10))
        blocker = MinHashLSHBlocker(num_permutations=512, band_size=4,
                                    shingle_mode="token", shingle_size=1,
                                    seed=11)
        a = Record({"title": f"{shared} {extra_a}"})
        b = Record({"title": f"{shared} {extra_b}"})
        sig = blocker.signatures([a, b])
        true_j = 30 / 50
        estimate = blocker.estimate_jaccard(sig[0], sig[1])
        assert abs(estimate - true_j) < 0.1

    def test_candidates_superset_of_high_jaccard_pairs(self):
        # Every pair above the Jaccard level where the (b, r) curve
        # clears 0.9999 must be a candidate (seeded, so deterministic).
        # Two lightly-noised views of each entity guarantee pairs above
        # the floor exist.
        rng = np.random.default_rng(5)
        profile = NoiseProfile(p_synonym=0.05, p_typo=0.01,
                               p_drop_word=0.0, p_missing_attr=0.0,
                               p_code_drift=0.1)
        schema = ["title", "brand", "modelno"]
        entities = [universe.sample_product(rng) for _ in range(30)]
        records = [universe.render_product(e, schema, profile, rng)
                   for e in entities for _ in range(2)]
        blocker = MinHashLSHBlocker(num_permutations=128, band_size=4,
                                    seed=0)
        shingles = [blocker.shingles(r) for r in records]
        floor = blocker.jaccard_at(0.9999)
        required = set()
        for i in range(len(records)):
            for j in range(i + 1, len(records)):
                union = len(shingles[i] | shingles[j])
                if union and len(shingles[i] & shingles[j]) / union >= floor:
                    required.add((i, j))
        assert required  # the check must not be vacuous
        assert required <= _pair_set(blocker.candidates(records))

    def test_mega_bucket_guard_caps_blowup(self):
        records = [Record({"title": "identical product listing"})
                   for _ in range(40)]
        guarded = MinHashLSHBlocker(max_bucket_size=10, seed=0)
        assert guarded.candidates(records) == []

    def test_token_shingle_mode(self):
        records = _catalog_records(20)
        pairs = MinHashLSHBlocker(shingle_mode="token", shingle_size=2,
                                  seed=0).candidates(records + records)
        assert (0, 20) in _pair_set(pairs)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MinHashLSHBlocker(num_permutations=10, band_size=3)
        with pytest.raises(ValueError):
            MinHashLSHBlocker(shingle_mode="byte")
        with pytest.raises(ValueError):
            MinHashLSHBlocker(shingle_size=0)
        with pytest.raises(ValueError):
            MinHashLSHBlocker(max_bucket_size=1)
        blocker = MinHashLSHBlocker()
        with pytest.raises(ValueError):
            blocker.collision_probability(1.5)
        with pytest.raises(ValueError):
            blocker.jaccard_at(0.0)


_titles = st.lists(
    st.text(alphabet="ab 12", min_size=0, max_size=12),
    min_size=0, max_size=12)


def _to_records(titles):
    return [Record({"title": t}) for t in titles]


class TestBlockerProperties:
    @settings(max_examples=40, deadline=None)
    @given(titles=_titles)
    def test_token_blocker_deterministic(self, titles):
        records = _to_records(titles)
        blocker = TokenBlocker(max_token_frequency=1.0)
        assert blocker.candidates(records) == blocker.candidates(records)

    @settings(max_examples=40, deadline=None)
    @given(titles=_titles)
    def test_tfidf_blocker_deterministic(self, titles):
        records = _to_records(titles)
        blocker = TfIdfBlocker(top_k=3, threshold=0.05)
        assert blocker.candidates(records) == blocker.candidates(records)

    @settings(max_examples=40, deadline=None)
    @given(titles=_titles)
    def test_minhash_blocker_deterministic(self, titles):
        records = _to_records(titles)
        blocker = MinHashLSHBlocker(num_permutations=16, band_size=2,
                                    seed=4)
        assert blocker.candidates(records) == blocker.candidates(records)

    @settings(max_examples=30, deadline=None)
    @given(titles=_titles, seed=st.integers(0, 2 ** 16))
    def test_token_blocker_permutation_invariant(self, titles, seed):
        self._assert_permutation_invariant(
            TokenBlocker(max_token_frequency=1.0), titles, seed)

    @settings(max_examples=30, deadline=None)
    @given(titles=_titles, seed=st.integers(0, 2 ** 16))
    def test_tfidf_blocker_permutation_invariant(self, titles, seed):
        self._assert_permutation_invariant(
            TfIdfBlocker(top_k=3, threshold=0.05), titles, seed)

    @settings(max_examples=30, deadline=None)
    @given(titles=_titles, seed=st.integers(0, 2 ** 16))
    def test_minhash_blocker_permutation_invariant(self, titles, seed):
        self._assert_permutation_invariant(
            MinHashLSHBlocker(num_permutations=16, band_size=2, seed=4),
            titles, seed)

    @staticmethod
    def _assert_permutation_invariant(blocker, titles, seed):
        # Candidate sets must agree up to index relabeling under any
        # shuffle of the input records.  (SortedNeighborhoodBlocker is
        # deliberately excluded: equal sort keys are windowed in input
        # order, so it only promises determinism, not invariance.)
        records = _to_records(titles)
        base = {(min(p.index_a, p.index_b), max(p.index_a, p.index_b))
                for p in blocker.candidates(records)}
        order = list(np.random.default_rng(seed).permutation(len(records)))
        shuffled = [records[i] for i in order]
        relabeled = set()
        for p in blocker.candidates(shuffled):
            i, j = order[p.index_a], order[p.index_b]
            relabeled.add((min(i, j), max(i, j)))
        assert relabeled == base


class TestEvaluateBlockingProperties:
    def test_empty_cross_product_reduction_is_one(self):
        # Regression: an empty cross product used to report RR 0.0.
        quality = evaluate_blocking([], set(), 0, 0)
        assert quality.reduction_ratio == 1.0
        assert quality.pairs_completeness == 1.0
        assert quality.num_candidates == 0

    def test_single_record_self_join_reduction_is_one(self):
        assert evaluate_blocking([], set(), 1).reduction_ratio == 1.0

    def test_self_join_cross_product(self):
        pairs = [CandidatePair(0, 1)]
        quality = evaluate_blocking(pairs, {(0, 1)}, 5)
        assert quality.reduction_ratio == 1.0 - 1 / 10
        assert quality.pairs_completeness == 1.0

    def test_duplicate_candidates_counted_once(self):
        pairs = [CandidatePair(0, 1), CandidatePair(0, 1)]
        assert evaluate_blocking(pairs, set(), 5).num_candidates == 1

    @settings(max_examples=60, deadline=None)
    @given(
        candidates=st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            max_size=40),
        matches=st.sets(
            st.tuples(st.integers(0, 20), st.integers(0, 20)),
            max_size=20),
        size_a=st.integers(0, 25),
        size_b=st.one_of(st.none(), st.integers(0, 25)))
    def test_metrics_always_in_range(self, candidates, matches,
                                     size_a, size_b):
        quality = evaluate_blocking(
            [CandidatePair(a, b) for a, b in candidates],
            matches, size_a, size_b)
        assert 0.0 <= quality.pairs_completeness <= 1.0
        assert 0.0 <= quality.reduction_ratio <= 1.0
        assert quality.num_candidates >= 0
