"""Blocking: token and sorted-neighborhood candidate generation."""

import numpy as np
import pytest

from repro.data import Record
from repro.data.blocking import (BlockingQuality, SortedNeighborhoodBlocker,
                                 TokenBlocker, evaluate_blocking)
from repro.data.generators import universe
from repro.data.generators._base import NoiseProfile


def _records():
    a = [Record({"title": "apexon phone zx100 black"}),
         Record({"title": "novatek laptop nv200 silver"}),
         Record({"title": "zenix camera zc300 red"})]
    b = [Record({"title": "apexon smartphone zx100"}),
         Record({"title": "novatek notebook nv200"}),
         Record({"title": "lumora watch lw400"})]
    return a, b


class TestTokenBlocker:
    def test_finds_shared_token_pairs(self):
        a, b = _records()
        pairs = TokenBlocker(max_token_frequency=1.0).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found       # shares "apexon", "zx100"
        assert (1, 1) in found       # shares "novatek", "nv200"
        assert (2, 2) not in found   # no shared tokens

    def test_min_shared_filters(self):
        a, b = _records()
        pairs = TokenBlocker(max_token_frequency=1.0,
                             min_shared=2).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found
        assert all(i == j for i, j in found)

    def test_frequency_cut_drops_stopwords(self):
        a = [Record({"title": f"the item {i}"}) for i in range(10)]
        b = [Record({"title": f"the product {i}"}) for i in range(10)]
        pairs = TokenBlocker(max_token_frequency=0.3).candidates(a, b)
        # "the" occurs everywhere and must not pair everything
        assert len(pairs) < 100

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBlocker(max_token_frequency=0.0)
        with pytest.raises(ValueError):
            TokenBlocker(min_shared=0)

    def test_attribute_subset(self):
        a = [Record({"title": "x", "brand": "shared"})]
        b = [Record({"title": "y", "brand": "shared"})]
        with_brand = TokenBlocker(max_token_frequency=1.0).candidates(a, b)
        title_only = TokenBlocker(attributes=["title"],
                                  max_token_frequency=1.0).candidates(a, b)
        assert with_brand and not title_only


class TestSortedNeighborhood:
    def test_nearby_keys_paired(self):
        a = [Record({"title": "aaa one"}), Record({"title": "zzz far"})]
        b = [Record({"title": "aab two"}), Record({"title": "mmm mid"})]
        pairs = SortedNeighborhoodBlocker("title", window=1).candidates(a, b)
        found = {(p.index_a, p.index_b) for p in pairs}
        assert (0, 0) in found

    def test_window_bounds_candidates(self):
        a = [Record({"title": f"{chr(97 + i)} item"}) for i in range(10)]
        b = [Record({"title": f"{chr(97 + i)} thing"}) for i in range(10)]
        small = SortedNeighborhoodBlocker("title", window=1).candidates(a, b)
        large = SortedNeighborhoodBlocker("title", window=8).candidates(a, b)
        assert len(small) < len(large)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SortedNeighborhoodBlocker("title", window=0)


class TestBlockingQuality:
    def test_perfect_blocking(self):
        from repro.data.blocking import CandidatePair
        candidates = [CandidatePair(0, 0), CandidatePair(1, 1)]
        quality = evaluate_blocking(candidates, {(0, 0), (1, 1)}, 10, 10)
        assert quality.pairs_completeness == 1.0
        assert quality.reduction_ratio == 1.0 - 2 / 100
        assert "PC 1.00" in str(quality)

    def test_missing_matches_lower_completeness(self):
        from repro.data.blocking import CandidatePair
        quality = evaluate_blocking([CandidatePair(0, 0)],
                                    {(0, 0), (5, 5)}, 10, 10)
        assert quality.pairs_completeness == 0.5

    def test_token_blocking_on_generated_universe(self):
        rng = np.random.default_rng(0)
        profile = NoiseProfile(p_missing_attr=0.0)
        schema = ["title", "brand", "modelno"]
        entities = [universe.sample_product(rng) for _ in range(30)]
        a = [universe.render_product(e, schema, profile, rng)
             for e in entities]
        b = [universe.render_product(e, schema, profile, rng)
             for e in entities]
        truth = {(i, i) for i in range(30)}
        pairs = TokenBlocker(max_token_frequency=0.5).candidates(a, b)
        quality = evaluate_blocking(pairs, truth, 30, 30)
        # two noisy views of the same entity share tokens almost always
        assert quality.pairs_completeness > 0.9
        assert quality.reduction_ratio > 0.3
