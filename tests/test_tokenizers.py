"""Tokenizers: vocab, normalization, WordPiece, BPE, unigram, pair packing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.tokenizers import (ByteLevelBPETokenizer, SpecialTokens,
                              SubwordTokenizer, UnigramTokenizer, Vocab,
                              WordPieceTokenizer, basic_pretokenize,
                              gpt2_pretokenize, normalize_text,
                              train_byte_level_bpe, train_unigram,
                              train_wordpiece)

CORPUS = [
    "the fast apexon phone with wireless display",
    "the quick apexon smartphone with cordless display",
    "a strong novatek laptop with big screen",
    "buy the new novatek notebook with large screen",
    "zenix camera with bright lens and strong battery",
] * 8


class TestVocab:
    def test_special_tokens_get_lowest_ids(self):
        vocab = Vocab(["aa", "bb"], SpecialTokens.bert())
        assert vocab.pad_id == 0
        assert vocab.unk_id == 1
        assert vocab.cls_id == 2
        assert vocab.sep_id == 3
        assert vocab.mask_id == 4

    def test_roundtrip_token_ids(self):
        vocab = Vocab(["hello", "world"], SpecialTokens.bert())
        assert vocab.id_to_token(vocab.token_to_id("hello")) == "hello"

    def test_unknown_maps_to_unk(self):
        vocab = Vocab(["hello"], SpecialTokens.bert())
        assert vocab.token_to_id("zzz") == vocab.unk_id

    def test_duplicates_collapsed(self):
        vocab = Vocab(["x", "x", "y"], SpecialTokens.bert())
        assert len(vocab) == 5 + 2

    def test_save_load(self, tmp_path):
        vocab = Vocab(["alpha", "beta"], SpecialTokens.roberta())
        vocab.save(tmp_path / "v.json")
        loaded = Vocab.load(tmp_path / "v.json")
        assert loaded.tokens() == vocab.tokens()
        assert loaded.specials.cls == "<s>"

    def test_special_ids(self):
        vocab = Vocab(["a"], SpecialTokens.bert())
        assert vocab.special_ids() == {0, 1, 2, 3, 4}


class TestNormalize:
    def test_lowercase_and_accents(self):
        assert normalize_text("Café") == "cafe"

    def test_keep_case(self):
        assert normalize_text("ABC", lowercase=False) == "ABC"

    def test_basic_pretokenize_punctuation(self):
        assert basic_pretokenize("don't stop-now!") == [
            "don", "'", "t", "stop", "-", "now", "!"]

    def test_basic_pretokenize_whitespace(self):
        assert basic_pretokenize("  a  b ") == ["a", "b"]

    def test_gpt2_contractions(self):
        pieces = gpt2_pretokenize("it's fine")
        assert "'s" in pieces

    def test_gpt2_keeps_leading_space(self):
        pieces = gpt2_pretokenize("a b")
        assert pieces == ["a", " b"]


class TestWordPiece:
    @pytest.fixture(scope="class")
    def tok(self):
        return train_wordpiece(CORPUS, vocab_size=160, min_frequency=2)

    def test_learns_whole_common_words(self, tok):
        assert "the" in tok.vocab

    def test_roundtrip_known_text(self, tok):
        text = "the fast phone"
        assert tok.detokenize(tok.tokenize(text)) == text

    def test_continuation_prefix(self, tok):
        pieces = tok.tokenize("apexon")
        rebuilt = pieces[0] + "".join(p[2:] for p in pieces[1:])
        assert rebuilt == "apexon"
        assert all(p.startswith("##") for p in pieces[1:])

    def test_unknown_chars_to_unk(self, tok):
        assert tok.vocab.specials.unk in tok.tokenize("日本語")

    def test_payload_roundtrip(self, tok):
        clone = WordPieceTokenizer.from_payload(tok.to_payload())
        text = "quick cordless display"
        assert clone.tokenize(text) == tok.tokenize(text)

    def test_vocab_size_respected(self, tok):
        assert len(tok.vocab) <= 160


class TestByteLevelBPE:
    @pytest.fixture(scope="class")
    def tok(self):
        return train_byte_level_bpe(CORPUS, vocab_size=320)

    def test_lossless_roundtrip_any_text(self, tok):
        for text in ("the fast phone!", "weird $#@ tokens", "numbers 123.45"):
            assert tok.detokenize(tok.tokenize(text)) == text.lower()

    def test_no_unk_needed(self, tok):
        pieces = tok.tokenize("日本語")
        assert tok.vocab.specials.unk not in pieces

    def test_merges_ordered(self, tok):
        assert len(tok.merges) > 0
        assert all(isinstance(p, tuple) and len(p) == 2 for p in tok.merges)

    def test_payload_roundtrip(self, tok):
        clone = ByteLevelBPETokenizer.from_payload(tok.to_payload())
        text = "novatek notebook screen"
        assert clone.tokenize(text) == tok.tokenize(text)


class TestUnigram:
    @pytest.fixture(scope="class")
    def tok(self):
        return train_unigram(CORPUS, vocab_size=150)

    def test_roundtrip(self, tok):
        text = "the fast phone with display"
        assert tok.detokenize(tok.tokenize(text)) == text

    def test_cls_at_end(self, tok):
        assert tok.cls_at_end

    def test_viterbi_prefers_long_pieces(self, tok):
        # Longest-piece segmentations have fewer pieces than characters.
        pieces = tok.tokenize("the fast phone")
        assert len(pieces) < len("the fast phone")

    def test_payload_roundtrip(self, tok):
        clone = UnigramTokenizer.from_payload(tok.to_payload())
        text = "wireless camera battery"
        assert clone.tokenize(text) == tok.tokenize(text)


class TestPairEncoding:
    @pytest.fixture(scope="class")
    def wp(self):
        return train_wordpiece(CORPUS, vocab_size=160, min_frequency=2)

    @pytest.fixture(scope="class")
    def uni(self):
        return train_unigram(CORPUS, vocab_size=150)

    def test_pair_layout_bert_style(self, wp):
        enc = wp.encode_pair("fast phone", "quick smartphone",
                             max_length=20)
        v = wp.vocab
        assert enc.input_ids[0] == v.cls_id
        assert enc.cls_index == 0
        sep_positions = np.flatnonzero(enc.input_ids == v.sep_id)
        assert len(sep_positions) == 2
        assert enc.segment_ids[0] == 0
        assert enc.segment_ids[sep_positions[0] + 1] == 1
        assert len(enc) == 20

    def test_pair_layout_cls_at_end(self, uni):
        enc = uni.encode_pair("fast phone", "quick phone", max_length=24)
        assert enc.input_ids[-1] == uni.vocab.cls_id
        assert enc.cls_index == 23
        assert enc.pad_mask[0] or enc.num_real_tokens == 24  # left padding

    def test_truncation_trims_longer_side(self, wp):
        long_a = " ".join(["phone"] * 30)
        enc = wp.encode_pair(long_a, "display", max_length=16)
        assert len(enc) == 16
        # entity B must survive truncation
        sep_positions = np.flatnonzero(enc.input_ids == wp.vocab.sep_id)
        assert sep_positions[1] > sep_positions[0] + 1

    def test_max_length_too_small_raises(self, wp):
        with pytest.raises(ValueError):
            wp.encode_pair("a", "b", max_length=3)

    def test_encode_single(self, wp):
        enc = wp.encode_single("fast phone", max_length=10)
        assert enc.input_ids[0] == wp.vocab.cls_id
        assert len(enc) == 10

    def test_decode_skips_specials(self, wp):
        enc = wp.encode_pair("fast phone", "quick display", max_length=20)
        decoded = wp.decode(list(enc.input_ids))
        assert "[CLS]" not in decoded
        assert "fast" in decoded

    def test_no_padding_when_disabled(self, wp):
        enc = wp.encode_pair("fast", "phone", max_length=32,
                             pad_to_max=False)
        assert len(enc) < 32
        assert not enc.pad_mask.any()


@given(st.text(alphabet="abcdefg ", min_size=1, max_size=30))
@settings(max_examples=25, deadline=None)
def test_bpe_roundtrip_property(text):
    tok = train_byte_level_bpe(CORPUS, vocab_size=300)
    normalized = normalize_text(text, strip_accents=False)
    if normalized.strip():
        assert tok.detokenize(tok.tokenize(text)) == " ".join(
            normalized.split())


@given(st.integers(8, 40))
@settings(max_examples=15, deadline=None)
def test_pair_encoding_always_fits(max_length):
    tok = train_wordpiece(CORPUS, vocab_size=160, min_frequency=2)
    enc = tok.encode_pair("the fast apexon phone " * 3,
                          "the quick novatek laptop " * 3,
                          max_length=max_length)
    assert len(enc) == max_length
    assert enc.num_real_tokens <= max_length
