"""Shared fixtures: tiny corpora, tiny pre-trained checkpoints.

Tests never touch the user's real model zoo; everything zoo-like goes to
a session-scoped temporary directory with miniature settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.pretraining import ZooSettings, get_pretrained


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def tiny_settings() -> ZooSettings:
    return ZooSettings(base_steps=25, base_examples=150,
                       tokenizer_sentences=150, vocab_size=220,
                       d_model=32, num_layers=2, num_heads=2,
                       max_position=64, seq_len=32)


@pytest.fixture(scope="session")
def tiny_zoo_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("zoo")


@pytest.fixture(scope="session")
def tiny_bert(tiny_settings, tiny_zoo_dir):
    return get_pretrained("bert", seed=0, settings=tiny_settings,
                          zoo_dir=tiny_zoo_dir)


@pytest.fixture(scope="session")
def tiny_roberta(tiny_settings, tiny_zoo_dir):
    return get_pretrained("roberta", seed=0, settings=tiny_settings,
                          zoo_dir=tiny_zoo_dir)


@pytest.fixture(scope="session")
def tiny_xlnet(tiny_settings, tiny_zoo_dir):
    return get_pretrained("xlnet", seed=0, settings=tiny_settings,
                          zoo_dir=tiny_zoo_dir)


@pytest.fixture(scope="session")
def tiny_distilbert(tiny_settings, tiny_zoo_dir):
    return get_pretrained("distilbert", seed=0, settings=tiny_settings,
                          zoo_dir=tiny_zoo_dir)


@pytest.fixture(scope="session")
def tiny_corpus() -> list[str]:
    from repro.pretraining import generate_corpus
    from repro.utils import child_rng
    return generate_corpus(child_rng(0, "tests-corpus"), 120)


def numerical_gradient(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``f`` wrt array ``x``."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        index = it.multi_index
        original = x[index]
        x[index] = original + eps
        f_plus = f()
        x[index] = original - eps
        f_minus = f()
        x[index] = original
        grad[index] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad
