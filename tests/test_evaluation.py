"""Evaluation harness: experiment runner, tables, figures, convergence,
ablations, rendering utilities."""

import numpy as np
import pytest

from repro.evaluation import (ALL_ARCHS, ALL_DATASETS, CellResult,
                              ExperimentScale, FIGURE_DATASETS,
                              PAPER_TABLE5, analyze_convergence, figure,
                              run_baseline_cell, run_transformer_cell,
                              table3)
from repro.utils import Timer, child_rng, format_duration, format_series, \
    format_table, spawn_seeds


def _smoke_scale(tiny_settings, tiny_zoo_dir) -> ExperimentScale:
    return ExperimentScale(dataset_scale=0.03, epochs=1, runs=1,
                           max_length_cap=32,
                           zoo_settings=tiny_settings,
                           zoo_dir=str(tiny_zoo_dir))


class TestExperimentScale:
    def test_paper_scale_full_protocol(self):
        paper = ExperimentScale.paper()
        assert paper.dataset_scale == 1.0
        assert paper.epochs == 15
        assert paper.runs == 5

    def test_bench_scale_reduced(self):
        bench = ExperimentScale.bench()
        assert bench.dataset_scale < 1.0
        assert bench.runs >= 1
        assert bench.cache_dir is not None

    def test_bench_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        monkeypatch.setenv("REPRO_BENCH_EPOCHS", "9")
        bench = ExperimentScale.bench()
        assert bench.dataset_scale == 0.5
        assert bench.epochs == 9

    def test_cell_key_depends_on_protocol(self):
        a = ExperimentScale(dataset_scale=0.1)
        b = ExperimentScale(dataset_scale=0.2)
        assert a.cell_key("bert", "abt-buy") != b.cell_key("bert", "abt-buy")
        assert (a.cell_key("bert", "abt-buy")
                == ExperimentScale(dataset_scale=0.1).cell_key(
                    "bert", "abt-buy"))

    def test_constants(self):
        assert set(ALL_ARCHS) == {"bert", "xlnet", "roberta", "distilbert"}
        assert len(ALL_DATASETS) == 5
        assert set(FIGURE_DATASETS.values()) == set(ALL_DATASETS)
        assert set(PAPER_TABLE5) == set(ALL_DATASETS)


class TestCellResult:
    def test_mean_curve_averages_runs(self):
        cell = CellResult("bert", "abt-buy",
                          f1_curves=[[0.0, 10.0], [0.0, 30.0]])
        assert cell.mean_curve == [0.0, 20.0]
        assert cell.best_f1 == 20.0
        assert cell.final_f1 == 20.0

    def test_inconsistent_curves_raise(self):
        cell = CellResult("bert", "abt-buy",
                          f1_curves=[[0.0], [0.0, 1.0]])
        with pytest.raises(ValueError):
            cell.mean_curve


class TestRunners:
    def test_transformer_cell(self, tiny_settings, tiny_zoo_dir):
        scale = _smoke_scale(tiny_settings, tiny_zoo_dir)
        cell = run_transformer_cell("bert", "dblp-acm", scale)
        assert cell.arch == "bert"
        assert len(cell.f1_curves) == 1
        assert len(cell.mean_curve) == 2     # zero-shot + 1 epoch
        assert cell.mean_epoch_seconds > 0

    def test_baseline_cell(self, tiny_settings, tiny_zoo_dir):
        scale = ExperimentScale(dataset_scale=0.03, epochs=1, runs=1,
                                zoo_settings=tiny_settings,
                                zoo_dir=str(tiny_zoo_dir))
        result = run_baseline_cell("dblp-acm", scale)
        assert 0.0 <= result.magellan_f1 <= 100.0
        assert 0.0 <= result.deepmatcher_f1 <= 100.0
        assert result.deepmatcher_epoch_seconds > 0


class TestTables:
    def test_table3_contains_all_datasets(self):
        rendered = table3(scale=0.02)
        for name in ALL_DATASETS:
            assert name in rendered
        assert "Size" in rendered


class TestFigures:
    def test_figure_smoke(self, tiny_settings, tiny_zoo_dir):
        scale = _smoke_scale(tiny_settings, tiny_zoo_dir)
        result = figure(13, scale, archs=("bert",))
        assert result.dataset == "dblp-acm"
        assert "bert" in result.curves
        assert "Figure 13" in result.rendered()

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError):
            figure(1)


class TestConvergence:
    def test_fast_convergence_detected(self):
        cell = CellResult("bert", "d",
                          f1_curves=[[10.0, 88.0, 90.0, 91.0, 90.0]])
        summary = analyze_convergence(cell)
        assert summary.zero_shot_f1 == 10.0
        assert summary.peak_f1 == 91.0
        assert summary.epochs_to_within_5pct == 1
        assert summary.convergence_epoch == 1
        assert summary.holds_one_epoch_claim()

    def test_slow_convergence(self):
        cell = CellResult("bert", "d",
                          f1_curves=[[0.0, 10.0, 40.0, 85.0, 90.0, 90.0]])
        summary = analyze_convergence(cell)
        assert summary.epochs_to_within_5pct == 3
        assert not summary.holds_one_epoch_claim()

    def test_never_converges(self):
        cell = CellResult("bert", "d",
                          f1_curves=[[0.0, 50.0, 10.0, 60.0]])
        summary = analyze_convergence(cell, stability_window=2)
        assert summary.convergence_epoch is None


class TestUtils:
    def test_format_duration_styles(self):
        assert format_duration(0.5) == "500ms"
        assert format_duration(5.25) == "5.2s"
        assert format_duration(162) == "2m 42s"

    def test_format_table_alignment(self):
        out = format_table(["a", "bbbb"], [["x", 1], ["yy", 22]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbbb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        assert format_series("bert", [1.234, 5.0]) == "bert: 1.2 5.0"

    def test_child_rng_independent_streams(self):
        a = child_rng(0, "x").normal(size=3)
        b = child_rng(0, "y").normal(size=3)
        c = child_rng(0, "x").normal(size=3)
        assert not np.allclose(a, b)
        assert np.allclose(a, c)

    def test_child_rng_int_scope(self):
        a = child_rng(0, 1).normal()
        b = child_rng(0, 2).normal()
        assert a != b

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(5, 3) == spawn_seeds(5, 3)
        assert len(set(spawn_seeds(5, 10))) == 10

    def test_timer_measures(self):
        import time
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005
