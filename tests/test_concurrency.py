"""Tests for repro.analysis.concurrency: rules, lockset, schedules.

Three layers under test:

* the static rules RA113–RA117 (pure AST, via ``lint_source``);
* the runtime :class:`RaceDetector` — lockset verdicts, lock-order
  cycles, traced primitives, hook lifecycle, and the pure ``replay``
  kernel whose verdict must be independent of event interleaving
  (pinned by a hypothesis permutation test);
* the seeded :class:`ScheduleExplorer` — same seed, same schedule —
  plus the ``repro races`` scenarios and CLI.

The ``MetricsHTTPServer`` stress test lives here too: it scrapes
``/metrics`` and ``/healthz`` from several threads while writers hammer
the registry, which is exactly the traffic shape the registry locks
(and the RA114 guards) exist for.
"""

import json
import threading
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import lint_source
from repro.analysis.concurrency import (RaceDetector, RaceError,
                                        SCENARIO_NAMES, ScheduleExplorer,
                                        replay, run_races, run_scenario)
from repro.cli import main
from repro.utils import concurrency as hooks

pytestmark = pytest.mark.concurrency

PKG = "repro.serve.service"  # any non-wrapper production package


def _only(source, rule_id, package=PKG):
    return [v for v in lint_source(source, package=package)
            if v.rule == rule_id]


class TestLockOrderRule:
    def test_ra113_flags_inverted_nesting(self):
        source = ("class S:\n"
                  "    def one(self):\n"
                  "        with self.a_lock:\n"
                  "            with self.b_lock:\n"
                  "                pass\n"
                  "    def two(self):\n"
                  "        with self.b_lock:\n"
                  "            with self.a_lock:\n"
                  "                pass\n")
        assert len(_only(source, "RA113")) == 1

    def test_ra113_consistent_order_is_clean(self):
        source = ("class S:\n"
                  "    def one(self):\n"
                  "        with self.a_lock:\n"
                  "            with self.b_lock:\n"
                  "                pass\n"
                  "    def two(self):\n"
                  "        with self.a_lock:\n"
                  "            with self.b_lock:\n"
                  "                pass\n")
        assert not _only(source, "RA113")

    def test_ra113_sees_through_same_class_calls(self):
        source = ("class S:\n"
                  "    def _take_a(self):\n"
                  "        with self.a_lock:\n"
                  "            pass\n"
                  "    def one(self):\n"
                  "        with self.a_lock:\n"
                  "            with self.b_lock:\n"
                  "                pass\n"
                  "    def two(self):\n"
                  "        with self.b_lock:\n"
                  "            self._take_a()\n")
        assert len(_only(source, "RA113")) == 1


class TestGuardRule:
    GUARDED = ("class S:\n"
               "    def __init__(self):\n"
               "        self._lock = object()\n"
               "        self._items = []  # guard: _lock\n")

    def test_ra114_flags_unguarded_write(self):
        source = self.GUARDED + (
            "    def bad(self):\n"
            "        self._items.append(1)\n")
        hits = _only(source, "RA114")
        assert len(hits) == 1 and "_items" in hits[0].message

    def test_ra114_write_under_guard_is_clean(self):
        source = self.GUARDED + (
            "    def good(self):\n"
            "        with self._lock:\n"
            "            self._items.append(1)\n")
        assert not _only(source, "RA114")

    def test_ra114_guarded_by_decorator_exempts_method(self):
        source = self.GUARDED + (
            "    @guarded_by(\"_lock\")\n"
            "    def _push_locked(self, x):\n"
            "        self._items.append(x)\n")
        assert not _only(source, "RA114")

    def test_ra114_flags_guarded_by_call_without_lock(self):
        source = self.GUARDED + (
            "    @guarded_by(\"_lock\")\n"
            "    def _push_locked(self, x):\n"
            "        self._items.append(x)\n"
            "    def bad(self):\n"
            "        self._push_locked(1)\n")
        hits = _only(source, "RA114")
        assert len(hits) == 1 and "_push_locked" in hits[0].message

    def test_ra114_flags_plain_assignment(self):
        source = ("class S:\n"
                  "    def __init__(self):\n"
                  "        self._lock = object()\n"
                  "        self.total = 0  # guard: _lock\n"
                  "    def bad(self):\n"
                  "        self.total += 1\n")
        assert len(_only(source, "RA114")) == 1


class TestWaitAndBlockingRules:
    def test_ra115_flags_wait_outside_loop(self):
        source = ("class S:\n"
                  "    def bad(self):\n"
                  "        with self._cond:\n"
                  "            self._cond.wait()\n")
        assert len(_only(source, "RA115")) == 1

    def test_ra115_wait_in_while_is_clean(self):
        source = ("class S:\n"
                  "    def good(self):\n"
                  "        with self._cond:\n"
                  "            while not self.ready:\n"
                  "                self._cond.wait()\n")
        assert not _only(source, "RA115")

    def test_ra115_wait_for_is_clean(self):
        source = ("class S:\n"
                  "    def good(self):\n"
                  "        with self._cond:\n"
                  "            self._cond.wait_for(lambda: self.ready)\n")
        assert not _only(source, "RA115")

    def test_ra116_flags_sleep_under_lock(self):
        source = ("import time\n"
                  "class S:\n"
                  "    def bad(self):\n"
                  "        with self._lock:\n"
                  "            time.sleep(0.1)\n")
        hits = _only(source, "RA116")
        assert len(hits) == 1 and "sleep" in hits[0].message

    def test_ra116_flags_foreign_wait_under_lock(self):
        source = ("class S:\n"
                  "    def bad(self):\n"
                  "        with self._lock:\n"
                  "            self.done_event.wait()\n")
        assert len(_only(source, "RA116")) == 1

    def test_ra116_wait_on_held_condition_is_clean(self):
        source = ("class S:\n"
                  "    def good(self):\n"
                  "        with self._cond:\n"
                  "            self._cond.wait_for(lambda: self.ready)\n")
        assert not _only(source, "RA116")

    def test_ra116_clean_outside_lock(self):
        source = ("import time\n"
                  "def fine():\n"
                  "    time.sleep(0.1)\n")
        assert not _only(source, "RA116")

    def test_ra117_flags_manual_acquire(self):
        source = ("class S:\n"
                  "    def bad(self):\n"
                  "        self._lock.acquire()\n"
                  "        self.x = 1\n"
                  "        self._lock.release()\n")
        assert len(_only(source, "RA117")) == 2

    def test_ra117_with_statement_is_clean(self):
        source = ("class S:\n"
                  "    def good(self):\n"
                  "        with self._lock:\n"
                  "            self.x = 1\n")
        assert not _only(source, "RA117")

    def test_wrapper_packages_exempt(self):
        source = ("class W:\n"
                  "    def passthrough(self):\n"
                  "        self._lock.acquire()\n")
        assert not _only(source, "RA117",
                         package="repro.analysis.concurrency.lockset")


class _Shared:
    def __init__(self):
        self.counter = 0


class TestRaceDetector:
    def test_unguarded_write_from_two_threads_is_reported(self):
        with RaceDetector() as detector:
            shared = _Shared()
            # Both bumpers must be alive at once: the detector keys
            # thread identity by ident, and CPython reuses the ident
            # of an exited thread — without the barrier the first
            # bumper can finish all five iterations before the second
            # starts, which makes the two look like one thread and the
            # "race" disappear.
            ready = threading.Barrier(2)

            def bump():
                ready.wait()
                for _ in range(5):
                    hooks.access(shared, "counter", write=True)
                    shared.counter += 1

            threads = [threading.Thread(target=bump, name=f"bump-{i}")
                       for i in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        kinds = [r.kind for r in detector.reports]
        assert "unlocked-shared-write" in kinds
        report = detector.reports[0]
        assert report.subject == "_Shared.counter"
        assert len(report.threads) == 2

    def test_guarded_write_is_clean(self):
        with RaceDetector() as detector:
            shared = _Shared()
            lock = hooks.make_lock("shared-lock")

            def bump():
                for _ in range(5):
                    with lock:
                        hooks.access(shared, "counter", write=True)
                        shared.counter += 1

            threads = [threading.Thread(target=bump) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not detector.reports
        detector.assert_clean()

    def test_lock_order_cycle_is_reported_without_deadlocking(self):
        with RaceDetector() as detector:
            a = hooks.make_lock("A")
            b = hooks.make_lock("B")
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        kinds = [r.kind for r in detector.reports]
        assert kinds == ["lock-order-cycle"]
        assert set(detector.reports[0].locks) == {"A", "B"}

    def test_reentrant_reacquire_adds_no_cycle(self):
        with RaceDetector() as detector:
            rlock = hooks.make_rlock("R")
            other = hooks.make_lock("O")
            with rlock:
                with other:
                    with rlock:  # reentrant: no O -> R edge
                        pass
        assert not detector.reports

    def test_factory_returns_plain_primitives_when_inactive(self):
        lock = hooks.make_lock("plain")
        assert type(lock) is type(threading.Lock())
        assert hooks.lock_factory() is None
        assert hooks.access_hook() is None

    def test_detectors_do_not_nest(self):
        with RaceDetector():
            with pytest.raises(RuntimeError, match="nested"):
                with RaceDetector():
                    pass  # pragma: no cover
        assert hooks.access_hook() is None
        assert hooks.lock_factory() is None

    def test_raise_on_race(self):
        with pytest.raises(RaceError) as excinfo:
            with RaceDetector(raise_on_race=True):
                shared = _Shared()
                done = threading.Event()

                def other():
                    hooks.access(shared, "counter", write=True)
                    done.set()

                hooks.access(shared, "counter", write=True)
                thread = threading.Thread(target=other)
                thread.start()
                thread.join()
                done.wait()
        assert excinfo.value.report.kind == "unlocked-shared-write"
        assert hooks.access_hook() is None


THREAD_OPS = {
    "guarded": [("acquire", "L"), ("write", "v"), ("release", "L")],
    "unguarded": [("noop", None), ("write", "v"), ("noop", None)],
}


def _interleave(order, per_thread):
    """Merge per-thread op lists along ``order`` (a list of thread
    indices), preserving each thread's internal op order."""
    cursors = {t: iter(ops) for t, ops in enumerate(per_thread)}
    events = []
    for t in order:
        op, target = next(cursors[t])
        if op != "noop":
            events.append((f"t{t}", op, target))
    return events


class TestReplayKernel:
    def test_unguarded_writers_always_race(self):
        events = [("t0", "write", "v"), ("t1", "write", "v")]
        reports = replay(events)
        assert [r.kind for r in reports] == ["unlocked-shared-write"]

    def test_guarded_writers_never_race(self):
        events = [("t0", "acquire", "L"), ("t0", "write", "v"),
                  ("t0", "release", "L"),
                  ("t1", "acquire", "L"), ("t1", "write", "v"),
                  ("t1", "release", "L")]
        assert replay(events) == []

    @settings(max_examples=60, deadline=None)
    @given(st.permutations([0, 0, 0, 1, 1, 1]))
    def test_guarded_verdict_is_interleaving_independent(self, order):
        ops = [THREAD_OPS["guarded"], THREAD_OPS["guarded"]]
        assert replay(_interleave(order, ops)) == []

    @settings(max_examples=60, deadline=None)
    @given(st.permutations([0, 0, 0, 1, 1, 1]))
    def test_unguarded_verdict_is_interleaving_independent(self, order):
        ops = [THREAD_OPS["unguarded"], THREAD_OPS["unguarded"]]
        reports = replay(_interleave(order, ops))
        assert [r.kind for r in reports] == ["unlocked-shared-write"]


class TestScheduleExplorer:
    @staticmethod
    def _worker(log, name, steps=3):
        def run():
            for i in range(steps):
                hooks.checkpoint(f"step-{i}")
                log.append((name, i))
        return run

    def test_same_seed_same_schedule(self):
        traces = []
        for _ in range(2):
            log = []
            explorer = ScheduleExplorer(seed=42)
            result = explorer.run({"a": self._worker(log, "a"),
                                   "b": self._worker(log, "b")})
            assert result.completed and not result.errors
            traces.append((result.trace(), tuple(log)))
        assert traces[0] == traces[1]

    def test_different_seeds_explore_different_schedules(self):
        traces = set()
        for seed in range(6):
            log = []
            result = ScheduleExplorer(seed=seed).run(
                {"a": self._worker(log, "a"),
                 "b": self._worker(log, "b")})
            assert result.completed
            traces.add(result.trace())
        assert len(traces) > 1

    def test_worker_errors_are_collected(self):
        def boom():
            hooks.checkpoint("pre")
            raise ValueError("intentional")

        result = ScheduleExplorer(seed=0).run([boom])
        assert result.completed
        assert result.errors == ["t0: ValueError: intentional"]

    def test_opposite_lock_orders_deadlock_under_some_seed(self):
        deadlocks = 0
        cycle_seen = False
        for seed in range(12):
            with RaceDetector() as detector:
                a = hooks.make_lock("A")
                b = hooks.make_lock("B")

                def grab(first, second):
                    def run():
                        with first:
                            hooks.checkpoint("holding-first")
                            with second:
                                hooks.checkpoint("holding-both")
                    return run

                result = ScheduleExplorer(seed=seed, max_steps=100).run(
                    {"ab": grab(a, b), "ba": grab(b, a)})
            if result.deadlocked:
                deadlocks += 1
                assert set(result.blocked) == {"ab", "ba"}
            if any(r.kind == "lock-order-cycle"
                   for r in detector.reports):
                cycle_seen = True
        # The order cycle is schedule-independent; the actual deadlock
        # needs an interleaving where both threads hold their first
        # lock, which a short seed sweep must find.
        assert cycle_seen
        assert 0 < deadlocks < 12


class TestScenarios:
    def test_fixture_reproduces_race_for_any_seed(self):
        for seed in (0, 7, 23):
            out = run_scenario("fixture", seed=seed)
            assert out["passed"], out
            assert out["races"]

    def test_fixture_schedule_is_deterministic(self):
        first = run_scenario("fixture", seed=9)
        second = run_scenario("fixture", seed=9)
        assert (first["detail"]["schedule_trace"]
                == second["detail"]["schedule_trace"])

    def test_production_scenarios_run_clean(self):
        result = run_races(seed=7)
        assert set(result["scenarios"]) == set(SCENARIO_NAMES)
        assert result["passed"], result
        for name in ("serve", "perf-cache", "obs-registry"):
            assert not result["scenarios"][name]["races"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            run_scenario("nope")


class TestScrapeUnderLoad:
    def test_metrics_and_healthz_under_concurrent_match_traffic(self):
        from repro.obs import MetricsRegistry
        from repro.obs.expo import MetricsHTTPServer, parse_prometheus

        registry = MetricsRegistry()
        stop = threading.Event()
        wrote = [0, 0]

        def write(slot):
            while not stop.is_set():
                registry.counter("stress.ops",
                                 labels={"w": str(slot)}).inc()
                registry.histogram(
                    "stress.latency",
                    buckets=(0.001, 0.01, 0.1)).observe(0.004)
                wrote[slot] += 1

        bodies, health, failures = [], [], []

        def scrape(url):
            try:
                for _ in range(10):
                    with urllib.request.urlopen(f"{url}/metrics",
                                                timeout=10) as resp:
                        bodies.append(resp.read().decode("utf-8"))
                    with urllib.request.urlopen(f"{url}/healthz",
                                                timeout=10) as resp:
                        health.append(json.loads(resp.read()))
            except Exception as exc:  # noqa: BLE001 — collected for the
                # assertion; a scrape failure must fail the test, not
                # hang a thread.
                failures.append(f"{type(exc).__name__}: {exc}")

        with MetricsHTTPServer(registry) as server:
            writers = [threading.Thread(target=write, args=(slot,))
                       for slot in range(2)]
            scrapers = [threading.Thread(target=scrape,
                                         args=(server.url,))
                        for _ in range(3)]
            for thread in writers + scrapers:
                thread.start()
            for thread in scrapers:
                thread.join()
            stop.set()
            for thread in writers:
                thread.join()

        assert not failures, failures
        assert len(bodies) == 30 and len(health) == 30
        assert all(doc["status"] == "ok" for doc in health)
        for body in bodies:
            parsed = parse_prometheus(body)  # every scrape parses whole
            for series, value in parsed.items():
                assert value == value, f"NaN in {series}"
        final = parse_prometheus(bodies[-1])
        counted = sum(v for k, v in final.items()
                      if k.startswith("stress_ops"))
        assert 0 < counted <= sum(wrote)


class TestCli:
    def test_races_fixture(self, capsys):
        assert main(["races", "--seed", "3",
                     "--scenario", "fixture"]) == 0
        out = capsys.readouterr().out
        assert "[ok] fixture" in out
        assert "unlocked-shared-write" in out

    def test_races_json(self, capsys):
        assert main(["races", "--seed", "3", "--scenario", "fixture",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["scenarios"]["fixture"]["expect_race"] is True

    def test_lint_strict_rejects_rule_filter(self, capsys):
        assert main(["lint", "--strict", "--rules", "RA101", "src"]) == 2
        assert "--strict" in capsys.readouterr().err

    def test_lint_strict_on_concurrency_package(self, capsys):
        import repro.analysis.concurrency as pkg
        from pathlib import Path
        path = str(Path(pkg.__file__).parent)
        assert main(["lint", "--strict", path]) == 0

    def test_check_umbrella_passes(self, capsys):
        assert main(["check", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "check passed: lint, audit, races" in out
