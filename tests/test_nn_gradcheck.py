"""Deep numerical gradient checks of composite blocks.

These go beyond per-op checks: whole attention/encoder blocks, XLNet's
relative attention with its gather-based position scoring, and the
two-stream path, verified against central differences in float64.
"""

import numpy as np
import pytest

from repro.models import default_config
from repro.models.bert import BertEmbeddings, BertPretrainingHeads
from repro.models.distilbert import DistilBertEmbeddings
from repro.models.roberta import RobertaPretrainingHead
from repro.models.transformer import TransformerEncoder, \
    TransformerEncoderLayer
from repro.models.xlnet import XLNetLayer, XLNetRelativeAttention, \
    permutation_masks
from repro.nn import GELU, MultiHeadAttention, ReLU, Tanh, Tensor

from conftest import numerical_gradient


def _to64(module):
    """Cast all parameters of a module to float64 for tight tolerances."""
    for param in module.parameters():
        param.data = param.data.astype(np.float64)
    return module


class TestAttentionGradients:
    def test_mha_input_gradient(self, rng):
        mha = _to64(MultiHeadAttention(8, 2, rng, dropout=0.0))
        x = rng.normal(size=(2, 5, 8))

        def forward():
            return float((mha(Tensor(x)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (mha(t) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-5

    def test_mha_masked_gradient(self, rng):
        mha = _to64(MultiHeadAttention(8, 2, rng, dropout=0.0))
        x = rng.normal(size=(1, 4, 8))
        mask = np.zeros((1, 1, 1, 4), dtype=bool)
        mask[..., -1] = True

        def forward():
            return float((mha(Tensor(x), attention_mask=mask) ** 2)
                         .sum().data)

        t = Tensor(x, requires_grad=True)
        (mha(t, attention_mask=mask) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-5

    def test_mha_projection_weight_gradient(self, rng):
        mha = _to64(MultiHeadAttention(8, 2, rng, dropout=0.0))
        x = rng.normal(size=(1, 3, 8))
        weight = mha.v_proj.weight

        def forward():
            return float((mha(Tensor(x)) ** 2).sum().data)

        (mha(Tensor(x, requires_grad=True)) ** 2).sum().backward()
        numeric = numerical_gradient(forward, weight.data)
        assert np.abs(numeric - weight.grad).max() < 1e-4

    def test_match_gain_gradient(self, rng):
        mha = _to64(MultiHeadAttention(8, 2, rng, dropout=0.0,
                                       match_bias=True))
        x = rng.normal(size=(1, 4, 8))
        match = rng.normal(size=(1, 4, 4))
        gain = mha.match_gain

        def forward():
            return float((mha(Tensor(x), match_scores=match) ** 2)
                         .sum().data)

        (mha(Tensor(x, requires_grad=True), match_scores=match) ** 2) \
            .sum().backward()
        numeric = numerical_gradient(forward, gain.data)
        assert np.abs(numeric - gain.grad).max() < 1e-4


class TestEncoderLayerGradients:
    @pytest.mark.parametrize("pre_norm", [True, False])
    def test_full_block_input_gradient(self, rng, pre_norm):
        config = default_config("bert", vocab_size=30, d_model=8,
                                num_layers=1, num_heads=2, max_position=8,
                                dropout=0.0)
        config.pre_norm = pre_norm
        layer = _to64(TransformerEncoderLayer(config, rng))
        x = rng.normal(size=(1, 4, 8))

        def forward():
            return float((layer(Tensor(x)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (layer(t) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-4


class TestXLNetGradients:
    def _attention(self, rng):
        config = default_config("xlnet", vocab_size=30, d_model=8,
                                num_layers=1, num_heads=2, max_position=8,
                                dropout=0.0)
        return _to64(XLNetRelativeAttention(config, rng))

    def test_relative_attention_input_gradient(self, rng):
        attention = self._attention(rng)
        x = rng.normal(size=(1, 4, 8))
        rel = rng.normal(size=(7, 8))

        def forward():
            return float((attention(Tensor(x), Tensor(x), Tensor(rel))
                          ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (attention(t, t, Tensor(rel)) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-4

    def test_position_bias_gradient(self, rng):
        attention = self._attention(rng)
        x = rng.normal(size=(1, 3, 8))
        rel = rng.normal(size=(5, 8))
        bias = attention.position_bias

        def forward():
            return float((attention(Tensor(x), Tensor(x), Tensor(rel))
                          ** 2).sum().data)

        (attention(Tensor(x, requires_grad=True), Tensor(x),
                   Tensor(rel)) ** 2).sum().backward()
        numeric = numerical_gradient(forward, bias.data)
        assert np.abs(numeric - bias.grad).max() < 1e-4

    def test_rel_projection_gradient(self, rng):
        attention = self._attention(rng)
        x = rng.normal(size=(1, 3, 8))
        rel = rng.normal(size=(5, 8))
        weight = attention.r_proj.weight

        def forward():
            return float((attention(Tensor(x), Tensor(x), Tensor(rel))
                          ** 2).sum().data)

        (attention(Tensor(x, requires_grad=True), Tensor(x),
                   Tensor(rel)) ** 2).sum().backward()
        numeric = numerical_gradient(forward, weight.data)
        assert np.abs(numeric - weight.grad).max() < 1e-4

    def test_permutation_mask_consistency_property(self, rng):
        for _ in range(10):
            order = rng.permutation(int(rng.integers(2, 9)))
            content, query = permutation_masks(order)
            n = len(order)
            # content = query minus the diagonal (self-visibility)
            assert np.array_equal(content | np.eye(n, dtype=bool),
                                  query | np.eye(n, dtype=bool))
            assert not content.diagonal().any()
            assert query.diagonal().all()
            # the k-th element of the order sees exactly k-1 others
            for position_rank, position in enumerate(order):
                visible = (~query[position]).sum()
                assert visible == position_rank


class TestActivationModules:
    """The GELU / ReLU / Tanh Module wrappers must match their Tensor ops
    and pass gradcheck like any other block."""

    @pytest.mark.parametrize("layer_cls,op", [
        (GELU, "gelu"), (ReLU, "relu"), (Tanh, "tanh")])
    def test_module_gradient(self, rng, layer_cls, op):
        layer = layer_cls()
        # Keep inputs away from ReLU's kink at 0, where the numerical
        # gradient is undefined.
        x = rng.normal(size=(3, 5))
        x[np.abs(x) < 0.1] += 0.5

        def forward():
            return float((layer(Tensor(x)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (layer(t) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-5
        assert np.allclose(layer(Tensor(x)).data,
                           getattr(Tensor(x), op)().data)


class TestXLNetLayerGradients:
    def test_xlnet_layer_input_gradient(self, rng):
        config = default_config("xlnet", vocab_size=30, d_model=8,
                                num_layers=1, num_heads=2, max_position=8,
                                dropout=0.0)
        layer = _to64(XLNetLayer(config, rng))
        x = rng.normal(size=(1, 4, 8))
        rel = rng.normal(size=(7, 8))

        def forward():
            return float((layer(Tensor(x), Tensor(rel)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (layer(t, Tensor(rel)) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-4


class TestEncoderStackGradients:
    def test_transformer_encoder_input_gradient(self, rng):
        config = default_config("bert", vocab_size=30, d_model=8,
                                num_layers=2, num_heads=2, max_position=8,
                                dropout=0.0)
        encoder = _to64(TransformerEncoder(config, rng))
        x = rng.normal(size=(1, 3, 8))

        def forward():
            return float((encoder(Tensor(x)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (encoder(t) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-4

    def test_transformer_encoder_return_all(self, rng):
        config = default_config("bert", vocab_size=30, d_model=8,
                                num_layers=2, num_heads=2, max_position=8,
                                dropout=0.0)
        encoder = TransformerEncoder(config, rng)
        x = Tensor(rng.normal(size=(1, 3, 8)))
        hidden, all_states = encoder(x, return_all=True)
        assert len(all_states) == config.num_layers + 1
        assert all_states[-1] is hidden


class TestEmbeddingModuleGradients:
    def _config(self, arch):
        return default_config(arch, vocab_size=30, d_model=8,
                              num_layers=1, num_heads=2, max_position=8,
                              dropout=0.0)

    def test_bert_embeddings_weight_gradient(self, rng):
        embeddings = _to64(BertEmbeddings(self._config("bert"), rng))
        ids = rng.integers(0, 30, size=(2, 4))
        weight = embeddings.token.weight

        def forward():
            return float((embeddings(ids) ** 2).sum().data)

        (embeddings(ids) ** 2).sum().backward()
        numeric = numerical_gradient(forward, weight.data)
        assert np.abs(numeric - weight.grad).max() < 1e-4

    def test_distilbert_embeddings_weight_gradient(self, rng):
        embeddings = _to64(DistilBertEmbeddings(self._config("distilbert"),
                                                rng))
        ids = rng.integers(0, 30, size=(2, 4))
        weight = embeddings.position.weight

        def forward():
            return float((embeddings(ids) ** 2).sum().data)

        (embeddings(ids) ** 2).sum().backward()
        numeric = numerical_gradient(forward, weight.data)
        assert np.abs(numeric - weight.grad).max() < 1e-4


class TestPretrainingHeadGradients:
    def _config(self, arch="bert"):
        return default_config(arch, vocab_size=30, d_model=8,
                              num_layers=1, num_heads=2, max_position=8,
                              dropout=0.0)

    def test_bert_pretraining_heads_mlm_gradient(self, rng):
        heads = _to64(BertPretrainingHeads(self._config(), rng))
        x = rng.normal(size=(1, 3, 8))

        def forward():
            return float((heads.mlm_logits(Tensor(x)) ** 2).sum().data)

        t = Tensor(x, requires_grad=True)
        (heads.mlm_logits(t) ** 2).sum().backward()
        numeric = numerical_gradient(forward, x)
        assert np.abs(numeric - t.grad).max() < 1e-4

    def test_bert_nsp_logits_shape(self, rng):
        heads = BertPretrainingHeads(self._config(), rng)
        pooled = Tensor(rng.normal(size=(4, 8)))
        assert heads.nsp_logits(pooled).shape == (4, 2)

    def test_roberta_head_drops_nsp(self, rng):
        head = RobertaPretrainingHead(self._config("roberta"), rng)
        assert head.mlm_logits(Tensor(rng.normal(size=(1, 3, 8)))) \
            .shape == (1, 3, 30)
        with pytest.raises(RuntimeError):
            head.nsp_logits(Tensor(rng.normal(size=(1, 8))))
