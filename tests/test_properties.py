"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.similarity import (jaccard_tokens,
                                        levenshtein_distance)
from repro.data import EMDataset, EntityPair, Record, split_dataset
from repro.data.dirty import dirty_record
from repro.matching.metrics import evaluate_predictions
from repro.nn import Tensor
from repro.tokenizers import normalize_text


# -- autodiff invariants ----------------------------------------------------

@given(st.lists(st.floats(-10, 10), min_size=1, max_size=16))
@settings(max_examples=40, deadline=None)
def test_softmax_is_distribution(values):
    probs = Tensor(np.array(values)).softmax().data
    assert np.all(probs >= 0)
    assert abs(probs.sum() - 1.0) < 1e-6


@given(st.lists(st.floats(-5, 5), min_size=2, max_size=10),
       st.floats(0.1, 3.0))
@settings(max_examples=40, deadline=None)
def test_gradient_linearity_in_scale(values, scale):
    """d/dx [c * f(x)] == c * d/dx f(x) for f = sum of squares."""
    x = np.array(values)
    t1 = Tensor(x.copy(), requires_grad=True)
    ((t1 * t1).sum() * scale).backward()
    t2 = Tensor(x.copy(), requires_grad=True)
    (t2 * t2).sum().backward()
    assert np.allclose(t1.grad, scale * t2.grad, rtol=1e-6)


@given(st.integers(1, 4), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_sum_then_mean_consistency(rows, cols):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(rows, cols))
    total = float(Tensor(x).sum().data)
    mean = float(Tensor(x).mean().data)
    assert abs(total - mean * rows * cols) < 1e-6


# -- metric invariants --------------------------------------------------------

@given(st.lists(st.integers(0, 1), min_size=1, max_size=40))
@settings(max_examples=40, deadline=None)
def test_perfect_prediction_is_always_best(labels):
    y = np.array(labels)
    perfect = evaluate_predictions(y, y)
    flipped = evaluate_predictions(y, 1 - y)
    assert perfect.f1 >= flipped.f1
    assert perfect.accuracy == 1.0


@given(st.lists(st.integers(0, 1), min_size=2, max_size=40),
       st.lists(st.integers(0, 1), min_size=2, max_size=40))
@settings(max_examples=40, deadline=None)
def test_precision_recall_symmetry(a, b):
    """Swapping y_true and y_pred swaps precision and recall."""
    n = min(len(a), len(b))
    y1, y2 = np.array(a[:n]), np.array(b[:n])
    m_forward = evaluate_predictions(y1, y2)
    m_backward = evaluate_predictions(y2, y1)
    assert abs(m_forward.precision - m_backward.recall) < 1e-12
    assert abs(m_forward.recall - m_backward.precision) < 1e-12
    assert abs(m_forward.f1 - m_backward.f1) < 1e-12


# -- similarity invariants ------------------------------------------------------

@given(st.text("abcdef", max_size=10), st.text("abcdef", max_size=10))
@settings(max_examples=50, deadline=None)
def test_levenshtein_symmetry_and_triangle(a, b):
    assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
    assert levenshtein_distance(a, b) <= max(len(a), len(b))


@given(st.text("abcdef", max_size=10), st.text("abcdef", max_size=10),
       st.text("abcdef", max_size=10))
@settings(max_examples=40, deadline=None)
def test_levenshtein_triangle_inequality(a, b, c):
    assert (levenshtein_distance(a, c)
            <= levenshtein_distance(a, b) + levenshtein_distance(b, c))


@given(st.text("ab ", max_size=20), st.text("ab ", max_size=20))
@settings(max_examples=40, deadline=None)
def test_jaccard_symmetry(a, b):
    assert jaccard_tokens(a, b) == jaccard_tokens(b, a)


# -- data invariants ------------------------------------------------------------

@given(st.dictionaries(st.sampled_from(["title", "brand", "price", "x"]),
                       st.text("abc 0", max_size=12), min_size=1,
                       max_size=4),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=40, deadline=None)
def test_dirty_record_preserves_token_multiset(values, seed):
    if "title" not in values:
        values["title"] = "base"
    record = Record(dict(values))
    corrupted = dirty_record(record, "title",
                             np.random.default_rng(seed))
    before = sorted(" ".join(record.values.values()).split())
    after = sorted(" ".join(corrupted.values.values()).split())
    assert before == after


@given(st.integers(10, 80), st.integers(1, 9),
       st.integers(0, 2 ** 31 - 1))
@settings(max_examples=25, deadline=None)
def test_split_partition_property(n, positives_per_ten, seed):
    labels = [1 if i % 10 < positives_per_ten else 0 for i in range(n)]
    pairs = [EntityPair(Record({"t": str(i)}), Record({"t": str(i)}),
                        label) for i, label in enumerate(labels)]
    dataset = EMDataset("p", "x", ["t"], pairs)
    splits = split_dataset(dataset, np.random.default_rng(seed))
    sizes = (len(splits.train), len(splits.validation), len(splits.test))
    assert sum(sizes) == n
    assert sizes[0] >= sizes[1] >= 0
    total_matches = (splits.train.stats().num_matches
                     + splits.validation.stats().num_matches
                     + splits.test.stats().num_matches)
    assert total_matches == sum(labels)


# -- normalization invariants ------------------------------------------------

@given(st.text(max_size=30))
@settings(max_examples=50, deadline=None)
def test_normalize_idempotent(text):
    once = normalize_text(text)
    assert normalize_text(once) == once
