"""Serving layer: micro-batching service, virtual clock, load sim.

Four contracts anchor ``repro.serve``:

1. **decision equivalence** — the service's probabilities and decisions
   are bit-identical to serial ``match_many`` for every architecture
   (and the DeepMatcher baseline behind the same backend interface);
2. **no lost or duplicated requests** — concurrent producers each get
   exactly their own outcome back, with correct request-id mapping and
   the queue gauge back at zero when the dust settles;
3. **typed failure** — deadline expiry raises :class:`RequestTimeout`,
   a full queue raises :class:`ServiceOverloaded` with a retry-after
   hint, and an injected batch-forward fault degrades *only* the
   poisoned requests;
4. **determinism** — every queueing test runs on the
   :class:`VirtualClock`; zero real ``time.sleep`` calls appear in this
   file, and a workload replays to identical latencies every run.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import DeepMatcher, DeepMatcherConfig
from repro.data import load_benchmark, split_dataset
from repro.matching import EntityMatcher, FineTuneConfig
from repro.obs import MetricsRegistry
from repro.perf import LRUCache, is_left_padded, plan_buckets
from repro.resilience import ChaosConfig, ChaosMonkey
from repro.serve import (CallableBackend, DeepMatcherBackend,
                         MatcherBackend, MatchService, RequestTimeout,
                         ServeConfig, ServiceClosed, ServiceOverloaded,
                         SystemClock, VirtualClock, generate_workload,
                         run_simulation, validate_serve_report)
from repro.utils import child_rng

pytestmark = pytest.mark.serve

BENCH_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "bench_serve.py"

ARCH_FIXTURES = ["tiny_bert", "tiny_roberta", "tiny_distilbert",
                 "tiny_xlnet"]


@pytest.fixture(scope="module")
def tiny_splits():
    data = load_benchmark("dblp-acm", seed=7, scale=0.04)
    return split_dataset(data, child_rng(7, "split", "dblp-acm"))


@pytest.fixture(scope="module")
def fitted_matchers(tiny_settings, tiny_zoo_dir, tiny_splits):
    """Lazily fit one matcher per architecture (cached per module)."""
    cache: dict[str, EntityMatcher] = {}

    def fit(arch: str) -> EntityMatcher:
        if arch not in cache:
            matcher = EntityMatcher(
                arch, seed=0, zoo_settings=tiny_settings,
                zoo_dir=tiny_zoo_dir,
                finetune_config=FineTuneConfig(epochs=1, batch_size=8,
                                               max_length_cap=32))
            matcher.fit(tiny_splits.train)
            cache[arch] = matcher
        return cache[arch]

    return fit


def _record_pairs(splits, n):
    pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    return [pairs[i % len(pairs)] for i in range(n)]


def _drain_all(service, clock):
    """Let workers settle, then play remaining flush timers to the end."""
    clock.settle(lambda: service.settled, timeout=60.0)
    while service.queue_depth or service.inflight:
        deadline = clock.next_deadline()
        if deadline is None:
            break
        clock.advance(max(deadline - clock.now(), 0.0))
        clock.settle(lambda: service.settled, timeout=60.0)


def _digit_score(entity_a, entity_b):
    """Deterministic identity-revealing score for queueing tests."""
    return float(entity_a["i"]) / 10_000.0


def _pair(i):
    return ({"i": str(i)}, {"i": str(i)})


class TestDecisionEquivalence:
    """Contract 1: service == serial ``match_many``, bit for bit."""

    @pytest.mark.parametrize("fixture", ARCH_FIXTURES)
    def test_bit_identical_to_match_many(self, fixture, fitted_matchers,
                                         tiny_splits):
        arch = fixture.removeprefix("tiny_")
        matcher = fitted_matchers(arch)
        pairs = _record_pairs(tiny_splits, 200)
        serial = matcher.match_many(pairs, fast=True, batch_size=32)

        service = MatchService(
            MatcherBackend(matcher, batch_size=32),
            ServeConfig(max_batch_size=len(pairs), max_wait_ms=5.0,
                        max_queue=len(pairs)),
            clock=VirtualClock(), registry=MetricsRegistry())
        # All pairs queued before start() -> a single drain covers them
        # all, so the engine sees the same chunk match_many would.
        tickets = service.submit_many(pairs)
        service.start()
        service.close(drain=True)

        assert len(tickets) == len(serial) == 200
        for ticket, expected in zip(tickets, serial):
            outcome = ticket.result(timeout=60.0)
            assert outcome.index == expected.index == ticket.request_id
            assert outcome.probability == expected.probability  # bitwise
            assert outcome.matched == expected.matched
            assert not outcome.degraded and not expected.degraded

    def test_equivalence_survives_micro_batching(self, fitted_matchers,
                                                 tiny_splits):
        """Small drains (many batches) must still score identically."""
        matcher = fitted_matchers("bert")
        pairs = _record_pairs(tiny_splits, 48)
        serial = matcher.match_many(pairs, fast=True, batch_size=8)

        clock = VirtualClock()
        service = MatchService(
            MatcherBackend(matcher, batch_size=8),
            ServeConfig(max_batch_size=8, max_wait_ms=5.0,
                        max_queue=len(pairs)),
            clock=clock, registry=MetricsRegistry())
        service.start()
        tickets = [service.submit(a, b) for a, b in pairs]
        _drain_all(service, clock)
        service.close(drain=True)

        for ticket, expected in zip(tickets, serial):
            outcome = ticket.result(timeout=60.0)
            assert outcome.probability == expected.probability
            assert outcome.matched == expected.matched

    def test_deepmatcher_backend_equivalence(self, tiny_splits):
        dm = DeepMatcher(DeepMatcherConfig(epochs=1, batch_size=16,
                                           variants=("attention",),
                                           use_pretrained_embeddings=False))
        dm.fit(tiny_splits.train, tiny_splits.validation)
        dataset = tiny_splits.test
        expected_probs = dm.predict_proba(dataset)
        expected_decisions = dm.predict(dataset)

        pairs = [(p.record_a, p.record_b) for p in dataset.pairs]
        service = MatchService(
            DeepMatcherBackend(dm, schema=dataset.schema,
                               text_attributes=dataset.text_attributes),
            ServeConfig(max_batch_size=len(pairs), max_wait_ms=5.0,
                        max_queue=len(pairs), threshold=dm.threshold),
            clock=VirtualClock(), registry=MetricsRegistry())
        tickets = service.submit_many(pairs)
        service.start()
        service.close(drain=True)

        for index, ticket in enumerate(tickets):
            outcome = ticket.result(timeout=60.0)
            assert outcome.probability == float(expected_probs[index])
            assert outcome.matched == bool(expected_decisions[index])


class TestCoalescingIsPermutationInverse:
    """Hypothesis: bucketing scatters, order restoration gathers."""

    @given(lengths=st.lists(st.integers(min_value=1, max_value=64),
                            min_size=1, max_size=80),
           batch_size=st.integers(min_value=1, max_value=16))
    @settings(deadline=None, max_examples=60)
    def test_bucket_plan_partitions_and_inverts(self, lengths, batch_size):
        buckets = plan_buckets(np.asarray(lengths), batch_size)
        flat = np.concatenate(buckets)
        # every request appears exactly once...
        assert sorted(flat.tolist()) == list(range(len(lengths)))
        # ...and scattering results back by index restores submission
        # order: gather(scatter(x)) == x for any payload.
        payload = np.arange(len(lengths)) * 7 + 1
        restored = np.empty_like(payload)
        restored[flat] = payload[flat]
        assert np.array_equal(restored, payload)
        # buckets are length-sorted: no batch mixes a longer sequence
        # before a shorter one across bucket boundaries.
        bucket_maxes = [max(lengths[i] for i in bucket.tolist())
                        for bucket in buckets]
        bucket_mins = [min(lengths[i] for i in bucket.tolist())
                       for bucket in buckets]
        for left_max, right_min in zip(bucket_maxes, bucket_mins[1:]):
            assert left_max <= right_min

    @given(lengths=st.lists(st.integers(min_value=1, max_value=15),
                            min_size=1, max_size=12),
           width=st.integers(min_value=16, max_value=24))
    @settings(deadline=None, max_examples=40)
    def test_left_padded_batches_are_never_trimmed(self, lengths, width):
        """The XLNet rule: left padding puts real tokens at the *end*,
        so trimming trailing columns would cut content, not padding."""
        left = np.ones((len(lengths), width), dtype=bool)
        right = np.ones((len(lengths), width), dtype=bool)
        for row, length in enumerate(lengths):
            left[row, width - length:] = False   # XLNet style
            right[row, :length] = False          # BERT style
        if any(length < width for length in lengths):
            assert is_left_padded(left)
        assert not is_left_padded(right)

    @given(order=st.permutations(list(range(12))))
    @settings(deadline=None, max_examples=40,
              suppress_health_check=[HealthCheck.too_slow])
    def test_service_outcomes_invariant_to_submission_order(self, order):
        """Whatever order producers submit in, each ticket gets its own
        pair's score back — coalescing never crosses wires."""
        clock = VirtualClock()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=5, max_wait_ms=2.0, max_queue=64),
            clock=clock, registry=MetricsRegistry())
        service.start()
        tickets = {i: service.submit(*_pair(i)) for i in order}
        _drain_all(service, clock)
        service.close(drain=True)
        for i, ticket in tickets.items():
            assert ticket.result(timeout=10.0).probability \
                == i / 10_000.0


class TestConcurrentProducers:
    """Contract 2: nothing lost, nothing duplicated, gauge returns."""

    def test_stress_no_lost_or_duplicated_requests(self):
        num_producers, per_producer = 8, 40
        clock = VirtualClock()
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=16, max_wait_ms=5.0,
                        max_queue=num_producers * per_producer),
            clock=clock, registry=registry)
        service.start()

        results: dict[int, object] = {}
        lock = threading.Lock()

        def producer(worker_id: int) -> None:
            rng = child_rng(13, "serve-stress", worker_id)
            payload = list(range(worker_id * 1000,
                                 worker_id * 1000 + per_producer))
            rng.shuffle(payload)
            for value in payload:
                ticket = service.submit(*_pair(value))
                with lock:
                    results[value] = ticket

        threads = [threading.Thread(target=producer, args=(worker_id,))
                   for worker_id in range(num_producers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        _drain_all(service, clock)
        service.close(drain=True)

        total = num_producers * per_producer
        assert len(results) == total  # no lost submissions
        request_ids = {t.request_id for t in results.values()}
        assert len(request_ids) == total  # no duplicated ids
        assert request_ids == set(range(total))  # dense, in-order issue
        for value, ticket in results.items():
            outcome = ticket.result(timeout=10.0)
            assert outcome.index == ticket.request_id
            assert outcome.probability == value / 10_000.0  # right pair
        assert registry.counter("serve.completed").value == total
        assert registry.counter("serve.requests").value == total
        assert registry.gauge("serve.queue.depth").value == 0
        assert service.queue_depth == 0 and service.inflight == 0

    def test_request_ids_issued_in_submission_order(self):
        service = MatchService(CallableBackend(_digit_score),
                               clock=VirtualClock(),
                               registry=MetricsRegistry())
        tickets = [service.submit(*_pair(i)) for i in range(5)]
        assert [t.request_id for t in tickets] == [0, 1, 2, 3, 4]
        service.start()
        service.close(drain=True)
        assert all(t.done() for t in tickets)


class TestMicroBatcherPolicy:
    """Flush on max_batch_size OR oldest-waited-max_wait_ms."""

    def test_full_batch_drains_without_timer(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=4, max_wait_ms=1000.0),
            clock=clock, registry=registry)
        service.start()
        tickets = [service.submit(*_pair(i)) for i in range(4)]
        # A full batch needs no time to pass: workers drain immediately.
        clock.settle(lambda: all(t.done() for t in tickets), timeout=10.0)
        service.close(drain=True)
        assert clock.now() == 0.0  # zero virtual time elapsed
        histogram = registry.histogram("serve.batch.size")
        assert histogram.count == 1 and histogram.max == 4

    def test_partial_batch_flushes_at_max_wait(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=32, max_wait_ms=5.0),
            clock=clock, registry=registry)
        service.start()
        ticket = service.submit(*_pair(1))
        clock.settle(lambda: service.settled, timeout=10.0)
        assert not ticket.done()  # parked behind the flush timer
        clock.advance(0.004)
        clock.settle(lambda: service.settled, timeout=10.0)
        assert not ticket.done()  # 4 ms < 5 ms: still waiting
        clock.advance(0.001)
        clock.settle(lambda: ticket.done(), timeout=10.0)
        service.close(drain=True)
        assert ticket.latency == pytest.approx(0.005)
        assert registry.histogram("serve.batch.wait_seconds").max \
            == pytest.approx(0.005)

    def test_close_without_drain_fails_pending_typed(self):
        service = MatchService(CallableBackend(_digit_score),
                               ServeConfig(max_batch_size=32,
                                           max_wait_ms=1000.0),
                               clock=VirtualClock(),
                               registry=MetricsRegistry())
        service.start()
        ticket = service.submit(*_pair(1))
        service.close(drain=False)
        with pytest.raises(ServiceClosed):
            ticket.result(timeout=10.0)

    def test_submit_after_close_raises(self):
        service = MatchService(CallableBackend(_digit_score),
                               clock=VirtualClock(),
                               registry=MetricsRegistry())
        service.start()
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(*_pair(1))
        with pytest.raises(ServiceClosed):
            service.start()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ServeConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            ServeConfig(max_wait_ms=-1.0)
        with pytest.raises(ValueError):
            ServeConfig(max_queue=0)
        with pytest.raises(ValueError):
            ServeConfig(num_workers=0)
        with pytest.raises(ValueError):
            ServeConfig(forward_batch_size=0)
        assert ServeConfig(max_batch_size=8).forward_batch_size == 8


class TestTimeoutsAndBackpressure:
    """Contract 3a/3b: typed deadline expiry and bounded admission."""

    def test_deadline_expiry_is_typed_not_silent(self):
        clock = VirtualClock()
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=32, max_wait_ms=500.0),
            clock=clock, registry=registry)
        service.start()
        doomed = service.submit(*_pair(1), timeout_ms=200.0)
        survivor = service.submit(*_pair(2), timeout_ms=2000.0)
        _drain_all(service, clock)
        service.close(drain=True)

        error = doomed.exception(timeout=10.0)
        assert isinstance(error, RequestTimeout)
        assert error.request_id == doomed.request_id
        assert error.waited >= 0.2
        with pytest.raises(RequestTimeout):
            doomed.result(timeout=10.0)
        assert survivor.result(timeout=10.0).probability \
            == 2 / 10_000.0  # the batch neighbor is unaffected
        assert registry.counter("serve.timeouts").value == 1
        assert registry.counter("serve.completed").value == 1

    def test_default_timeout_applies_when_unspecified(self):
        clock = VirtualClock()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=32, max_wait_ms=500.0,
                        default_timeout_ms=100.0),
            clock=clock, registry=MetricsRegistry())
        service.start()
        ticket = service.submit(*_pair(1))
        _drain_all(service, clock)
        service.close(drain=True)
        assert isinstance(ticket.exception(timeout=10.0), RequestTimeout)

    def test_full_queue_rejects_with_retry_after(self):
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=4, max_wait_ms=10.0, max_queue=8),
            clock=VirtualClock(), registry=registry)
        # Not started: the queue can only fill up.
        for i in range(8):
            service.submit(*_pair(i))
        with pytest.raises(ServiceOverloaded) as excinfo:
            service.submit(*_pair(99))
        assert excinfo.value.depth == 8
        # 8 pending / batches of 4 -> 2 drains at 10 ms flush horizon.
        assert excinfo.value.retry_after == pytest.approx(0.020)
        assert registry.counter("serve.rejected").value == 1
        service.start()
        service.close(drain=True)

    def test_submit_many_is_all_or_nothing(self):
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=4, max_wait_ms=10.0, max_queue=8),
            clock=VirtualClock(), registry=registry)
        service.submit_many([_pair(i) for i in range(6)])
        with pytest.raises(ServiceOverloaded):
            service.submit_many([_pair(i) for i in range(6, 10)])
        assert service.queue_depth == 6  # no partial admission
        assert registry.counter("serve.rejected").value == 4
        service.start()
        service.close(drain=True)

    def test_open_loop_sim_counts_rejections(self):
        """An overdriven service sheds load instead of buffering."""
        clock = VirtualClock()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=2, max_wait_ms=50.0, max_queue=4),
            clock=clock, registry=MetricsRegistry())
        workload = generate_workload([_pair(i) for i in range(16)],
                                     num_requests=16, rate=10_000.0,
                                     seed=3, pattern="burst",
                                     burst_size=16)
        report = run_simulation(service, workload)
        assert report.offered == 16
        assert report.rejected > 0
        assert report.completed + report.rejected == 16


class TestChaosDegradation:
    """Contract 3c: a poisoned forward degrades only its own requests."""

    def test_poisoned_rows_degrade_neighbors_survive(self):
        chaos = ChaosMonkey(ChaosConfig(poison_forward_rows={1, 3}))
        registry = MetricsRegistry()
        service = MatchService(
            CallableBackend(_digit_score),
            ServeConfig(max_batch_size=8, max_wait_ms=5.0),
            clock=VirtualClock(), registry=registry, chaos=chaos)
        tickets = [service.submit(*_pair(i)) for i in range(6)]
        service.start()
        service.close(drain=True)

        for i, ticket in enumerate(tickets):
            outcome = ticket.result(timeout=10.0)
            if i in (1, 3):
                assert outcome.degraded
                assert outcome.error and "chaos" in outcome.error
            else:
                assert not outcome.degraded
                assert outcome.probability == i / 10_000.0
        assert registry.counter("serve.degraded").value == 2
        assert registry.counter("serve.completed").value == 6

    def test_matcher_backend_degrades_to_similarity_fallback(
            self, fitted_matchers, tiny_splits):
        matcher = fitted_matchers("bert")
        pairs = _record_pairs(tiny_splits, 4)
        serial = matcher.match_many(pairs, fast=True)
        chaos = ChaosMonkey(ChaosConfig(poison_forward_rows={2}))
        registry = MetricsRegistry()
        service = MatchService(
            MatcherBackend(matcher, batch_size=8),
            ServeConfig(max_batch_size=len(pairs), max_wait_ms=5.0),
            clock=VirtualClock(), registry=registry, chaos=chaos)
        tickets = service.submit_many(pairs)
        service.start()
        service.close(drain=True)

        for i, (ticket, expected) in enumerate(zip(tickets, serial)):
            outcome = ticket.result(timeout=60.0)
            if i == 2:
                assert outcome.degraded  # similarity fallback kicked in
            else:
                assert not outcome.degraded
                assert outcome.probability == expected.probability
        assert registry.counter("serve.degraded").value == 1

    def test_wholesale_backend_failure_fails_tickets_typed(self):
        def explode(entity_a, entity_b):
            raise MemoryError("backend is gone")

        class BrokenBackend:
            def score(self, pairs, keys, threshold, fallback,
                      forward_hook=None, cb=None):
                raise MemoryError("backend is gone")

        service = MatchService(BrokenBackend(), clock=VirtualClock(),
                               registry=MetricsRegistry())
        ticket = service.submit(*_pair(1))
        service.start()
        service.close(drain=True)
        error = ticket.exception(timeout=10.0)
        assert error is not None and "wholesale" in str(error)


class TestVirtualClock:
    """The clock itself: deterministic timers, no real time."""

    def test_timers_fire_in_deadline_then_registration_order(self):
        clock = VirtualClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append("late"))
        clock.call_at(1.0, lambda: fired.append("early-first"))
        clock.call_at(1.0, lambda: fired.append("early-second"))
        handle = clock.call_at(1.5, lambda: fired.append("cancelled"))
        clock.cancel(handle)
        clock.advance(3.0)
        assert fired == ["early-first", "early-second", "late"]
        assert clock.now() == 3.0
        assert clock.pending_timers() == 0
        assert clock.next_deadline() is None

    def test_advance_never_moves_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_sleep_wakes_on_advance(self):
        clock = VirtualClock()
        woke = threading.Event()

        def sleeper():
            clock.sleep(1.0)
            woke.set()

        thread = threading.Thread(target=sleeper)
        thread.start()
        clock.settle(lambda: clock.pending_timers() == 1, timeout=10.0)
        clock.advance(1.0)
        assert woke.wait(timeout=10.0)
        thread.join()

    def test_condition_timeout_runs_on_virtual_time(self):
        clock = VirtualClock()
        cond = clock.condition()
        outcome = []

        def waiter():
            with cond:
                outcome.append(cond.wait_for(lambda: False, timeout=2.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        clock.settle(lambda: clock.pending_timers() == 1, timeout=10.0)
        clock.advance(1.9)
        assert not outcome  # virtual deadline not reached yet
        clock.advance(0.2)
        thread.join(timeout=10.0)
        assert outcome == [False]

    def test_system_clock_condition_times_out(self):
        cond = SystemClock().condition()
        with cond:
            assert cond.wait_for(lambda: False, timeout=0.001) is False


class TestSimulationDeterminism:
    """Contract 4: same seed, same schedule, same exact latencies."""

    @pytest.mark.parametrize("pattern",
                             ["poisson", "burst", "adversarial"])
    def test_workload_generation_is_seeded(self, pattern):
        pairs = [_pair(i) for i in range(10)]
        first = generate_workload(pairs, num_requests=40, rate=100.0,
                                  seed=11, pattern=pattern)
        second = generate_workload(pairs, num_requests=40, rate=100.0,
                                   seed=11, pattern=pattern)
        assert [a.at for a in first.arrivals] \
            == [a.at for a in second.arrivals]
        assert [a.entity_a for a in first.arrivals] \
            == [a.entity_a for a in second.arrivals]
        other = generate_workload(pairs, num_requests=40, rate=100.0,
                                  seed=12, pattern=pattern)
        if pattern != "burst":  # burst times are seed-independent
            assert [a.at for a in first.arrivals] \
                != [a.at for a in other.arrivals]

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            generate_workload([_pair(0)], num_requests=1, rate=100.0,
                              pattern="thundering-herd")
        with pytest.raises(ValueError):
            generate_workload([_pair(0)], num_requests=1, rate=0.0)
        with pytest.raises(ValueError):
            generate_workload([_pair(0)], num_requests=0, rate=1.0)
        with pytest.raises(ValueError):
            generate_workload([], num_requests=1, rate=1.0)

    def test_first_arrival_is_at_time_zero(self):
        workload = generate_workload([_pair(0)], num_requests=5,
                                     rate=50.0, seed=0)
        assert workload.arrivals[0].at == 0.0
        assert workload.duration == workload.arrivals[-1].at

    @pytest.mark.parametrize("pattern",
                             ["poisson", "burst", "adversarial"])
    def test_replay_is_bit_deterministic(self, pattern):
        def run():
            clock = VirtualClock()
            service = MatchService(
                CallableBackend(_digit_score),
                ServeConfig(max_batch_size=8, max_wait_ms=20.0,
                            max_queue=64),
                clock=clock, registry=MetricsRegistry())
            workload = generate_workload(
                [_pair(i) for i in range(12)], num_requests=50,
                rate=200.0, seed=21, pattern=pattern)
            return run_simulation(service, workload)

        first, second = run(), run()
        assert first.completed == second.completed == 50
        assert first.rejected == second.rejected == 0
        assert first.latencies == second.latencies  # exact floats
        assert first.duration == second.duration
        assert all(first.outcomes[k].probability
                   == second.outcomes[k].probability
                   for k in first.outcomes)

    def test_sim_report_quantiles(self):
        from repro.serve import SimReport
        report = SimReport(offered=4, completed=4, duration=2.0,
                           latencies=[0.4, 0.1, 0.3, 0.2])
        assert report.latency_quantile(0.0) == 0.1
        assert report.latency_quantile(1.0) == 0.4
        assert report.latency_quantile(0.5) == pytest.approx(0.25)
        assert report.throughput == 2.0
        with pytest.raises(ValueError):
            report.latency_quantile(1.5)

    def test_no_real_sleeps_in_this_test_file(self):
        import ast
        tree = ast.parse(Path(__file__).read_text())
        sleeps = [
            node.lineno for node in ast.walk(tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "sleep"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "time"]
        imports = [
            node.lineno for node in ast.walk(tree)
            if isinstance(node, ast.ImportFrom) and node.module == "time"]
        assert sleeps == [] and imports == []


class TestThreadSafetyRegressions:
    """Satellite 4: the races the serving layer exposed, pinned down."""

    def test_lru_cache_concurrent_mixed_workload(self):
        cache = LRUCache(maxsize=64)
        errors = []

        def hammer(worker_id: int) -> None:
            rng = child_rng(5, "lru-hammer", worker_id)
            try:
                for _ in range(2000):
                    key = int(rng.integers(0, 200))
                    if rng.random() < 0.5:
                        cache.put(key, key * 2)
                    else:
                        value = cache.get(key)
                        if value is not None and value != key * 2:
                            errors.append((key, value))
            except Exception as exc:  # noqa: BLE001 — fail the test
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,))
                   for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.hits + cache.misses > 0

    def test_lru_eviction_accounting_under_contention(self):
        cache = LRUCache(maxsize=16)
        evictions = []
        lock = threading.Lock()

        def writer(worker_id: int) -> None:
            count = 0
            for i in range(500):
                if cache.put((worker_id, i), i):
                    count += 1
            with lock:
                evictions.append(count)

        threads = [threading.Thread(target=writer, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # inserts - evictions == live entries, exactly: no double counts
        assert 4 * 500 - sum(evictions) == len(cache)
        assert cache.evictions == sum(evictions)

    def test_metrics_registry_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        instances = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def grab() -> None:
            barrier.wait()
            counter = registry.counter("serve.race")
            with lock:
                instances.append(counter)

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instance) for instance in instances}) == 1
        with pytest.raises(TypeError):
            registry.gauge("serve.race")  # kind mismatch stays typed

    def test_counter_and_histogram_exact_under_threads(self):
        registry = MetricsRegistry()
        counter = registry.counter("serve.exact")
        histogram = registry.histogram("serve.lat")

        def bump() -> None:
            for _ in range(5000):
                counter.inc()
                histogram.observe(1.0)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * 5000  # no lost increments
        assert histogram.count == 8 * 5000
        assert histogram.total == pytest.approx(8 * 5000)


class TestBenchReport:
    """Satellite 5: the serve benchmark emits a valid report."""

    def test_validate_flags_gaps(self):
        assert validate_serve_report({}) != []
        assert any("levels" in problem
                   for problem in validate_serve_report(
                       {"benchmark": "serve"}))

    def test_bench_script_smoke(self, tiny_zoo_dir, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        proc = subprocess.run(
            [sys.executable, str(BENCH_SCRIPT), "--smoke",
             "--zoo-dir", str(tiny_zoo_dir), "--output", str(out)],
            cwd=BENCH_SCRIPT.parent, capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": f"{BENCH_SCRIPT.parent.parent / 'src'}:."},
            check=False)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert validate_serve_report(report) == []
        assert report["smoke"] is True
        assert set(report["levels"]) == {"0.5x", "1x", "2x"}


class TestRequestTracing:
    """Tentpole: every sampled request yields a complete causal span
    tree, exactly reproducible under the virtual clock."""

    @staticmethod
    def _service(clock, config=None, chaos=None):
        return MatchService(
            CallableBackend(_digit_score),
            config or ServeConfig(max_batch_size=8, max_wait_ms=5.0),
            clock=clock, registry=MetricsRegistry(), chaos=chaos)

    def test_span_tree_structure_and_ids(self):
        clock = VirtualClock()
        service = self._service(clock)
        tickets = [service.submit(*_pair(i)) for i in range(3)]
        service.start()
        service.close(drain=True)

        roots = service.tracer.snapshot()
        assert len(roots) == 3
        seen_span_ids = set()
        for root, ticket in zip(roots, tickets):
            assert root.name == "serve.request"
            assert ticket.trace_id == root.trace_id
            assert root.attrs["outcome"] == "ok"
            names = root.stage_names()
            assert names[:2] == ["enqueue", "queue_wait"]
            assert names[-1] == "postprocess"
            assert {"batch_assembly", "forward"} <= set(names)
            for span, depth in root.walk():
                assert span.trace_id == root.trace_id
                assert span.end is not None
                assert span.span_id not in seen_span_ids
                seen_span_ids.add(span.span_id)
                if depth:
                    assert span.parent_id == root.span_id

    def test_queue_wait_duration_is_exact(self):
        clock = VirtualClock()
        service = self._service(
            clock, ServeConfig(max_batch_size=8, max_wait_ms=50.0))
        service.start()
        ticket = service.submit(*_pair(1))
        _drain_all(service, clock)  # flush timer fires at exactly 50 ms
        service.close(drain=True)

        assert ticket.result(timeout=10.0).probability == 1 / 10_000.0
        (root,) = service.tracer.snapshot()
        wait = root.find("queue_wait")
        assert wait.duration == 0.05  # exact under the virtual clock
        assert wait.attrs["waited"] == 0.05
        assert root.duration == 0.05

    def test_child_durations_sum_to_request_latency(self):
        clock = VirtualClock()
        service = self._service(
            clock, ServeConfig(max_batch_size=4, max_wait_ms=10.0,
                               max_queue=64))
        workload = generate_workload(
            [_pair(i) for i in range(10)], num_requests=25, rate=300.0,
            seed=5, pattern="poisson")
        report = run_simulation(service, workload)

        roots = service.tracer.snapshot()
        assert report.completed == len(roots) == 25
        for root in roots:
            total = sum(child.duration for child in root.children)
            assert abs(total - root.duration) < 1e-12

    def test_degraded_request_span_carries_reason(self):
        clock = VirtualClock()
        service = self._service(
            clock, chaos=ChaosMonkey(
                ChaosConfig(poison_forward_rows={1})))
        tickets = [service.submit(*_pair(i)) for i in range(3)]
        service.start()
        service.close(drain=True)

        assert tickets[1].result(timeout=10.0).degraded
        by_request = {root.attrs["request_id"]: root
                      for root in service.tracer.snapshot()}
        assert by_request[1].attrs["outcome"] == "degraded"
        assert "chaos" in by_request[1].attrs["reason"]
        assert by_request[0].attrs["outcome"] == "ok"
        assert "reason" not in by_request[0].attrs

    def test_sampling_is_deterministic_head_stride(self):
        clock = VirtualClock()
        service = self._service(
            clock, ServeConfig(max_batch_size=8, max_wait_ms=5.0,
                               trace_sample_rate=0.5))
        tickets = [service.submit(*_pair(i)) for i in range(6)]
        service.start()
        service.close(drain=True)

        # Stride 2 keyed on the request sequence number: 0, 2, 4.
        assert [t.trace_id is not None for t in tickets] \
            == [True, False, True, False, True, False]
        assert len(service.tracer.snapshot()) == 3

    def test_sampling_off_disables_tracing(self):
        clock = VirtualClock()
        service = self._service(
            clock, ServeConfig(max_batch_size=8, max_wait_ms=5.0,
                               trace_sample_rate=0.0))
        ticket = service.submit(*_pair(1))
        service.start()
        service.close(drain=True)
        assert ticket.result(timeout=10.0) is not None
        assert ticket.trace_id is None
        assert service.tracer.snapshot() == []

    def test_legacy_backend_without_stages_still_traces(self):
        class LegacyBackend:
            """Pre-stages protocol: no ``stages`` parameter."""

            def __init__(self):
                self._inner = CallableBackend(_digit_score)

            def score(self, pairs, keys, threshold, fallback,
                      forward_hook=None, cb=None):
                return self._inner.score(pairs, keys, threshold,
                                         fallback, forward_hook, cb)

        service = MatchService(
            LegacyBackend(), ServeConfig(max_batch_size=8,
                                         max_wait_ms=5.0),
            clock=VirtualClock(), registry=MetricsRegistry())
        ticket = service.submit(*_pair(2))
        service.start()
        service.close(drain=True)

        assert ticket.result(timeout=10.0).probability == 2 / 10_000.0
        (root,) = service.tracer.snapshot()
        names = root.stage_names()
        assert "queue_wait" in names and "batch_assembly" in names
        assert "forward" not in names  # legacy backend: no stage records

    def test_timeout_span_finishes_with_reason(self):
        clock = VirtualClock()
        service = self._service(
            clock, ServeConfig(max_batch_size=8, max_wait_ms=200.0))
        service.start()
        ticket = service.submit(*_pair(1), timeout_ms=20.0)
        _drain_all(service, clock)
        service.close(drain=True)

        with pytest.raises(RequestTimeout):
            ticket.result(timeout=10.0)
        (root,) = service.tracer.snapshot()
        assert root.attrs["outcome"] == "timeout"
        assert "deadline" in root.attrs["reason"]
        assert root.find("queue_wait").end is not None
