"""Tests for repro.analysis: linter rules, tape sanitizer, coverage audit.

Two of these are tier-1 gates on the repo itself, not just on the
analysis code: ``test_src_lints_clean`` fails the suite on any new
violation anywhere under ``src/repro``, and ``test_coverage_is_complete``
fails it when a Tensor op or Module subclass lands without test evidence.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import (AnomalyError, audit_coverage, available_rules,
                            detect_anomalies, format_json, format_text,
                            is_sanitizing, lint_paths, lint_source,
                            module_classes, tensor_ops)
from repro.cli import main
from repro.nn import Tensor
from repro.obs import trace

pytestmark = pytest.mark.analysis

SRC = Path(repro.__file__).parent
TESTS = Path(__file__).parent


class TestSelfLint:
    def test_src_lints_clean(self):
        violations = lint_paths([SRC])
        assert not violations, "\n" + format_text(violations)

    def test_rule_catalog(self):
        rules = available_rules()
        assert len(rules) == 20
        ids = [r.id for r in rules]
        assert len(set(ids)) == len(ids)
        assert all(r.id.startswith("RA") and r.name and r.hint
                   for r in rules)


def _only(source, rule_id, package=None):
    return [v for v in lint_source(source, package=package)
            if v.rule == rule_id]


class TestLintRules:
    def test_ra101_numpy_on_tensor_data(self):
        source = ("import numpy as np\n"
                  "def f(t):\n"
                  "    return np.tanh(t.data)\n")
        hits = _only(source, "RA101", package="repro.matching.api")
        assert len(hits) == 1 and hits[0].line == 3
        # The same call inside repro.nn is the implementation, not a leak.
        assert not _only(source, "RA101", package="repro.nn.tensor")

    def test_ra102_hard_coded_dtype(self):
        source = ("import numpy as np\n"
                  "a = np.zeros(3, dtype=np.float32)\n"
                  'b = np.ones(3, dtype="float64")\n')
        hits = _only(source, "RA102", package="repro.models.foo")
        assert [v.line for v in hits] == [2, 3]
        assert not _only(source, "RA102", package="repro.nn.init")

    def test_ra103_loop_closure_late_binding(self):
        bad = ("def build(items):\n"
               "    fns = []\n"
               "    for item in items:\n"
               "        def _backward(grad):\n"
               "            return grad * item\n"
               "        fns.append(_backward)\n"
               "    return fns\n")
        assert len(_only(bad, "RA103")) == 1
        good = bad.replace("def _backward(grad):",
                           "def _backward(grad, item=item):")
        assert not _only(good, "RA103")

    def test_ra104_inference_missing_no_grad(self):
        bad = ("from repro.nn import Tensor\n"
               "def predict_proba(model, x):\n"
               "    return model(Tensor(x)).data\n")
        assert len(_only(bad, "RA104", package="repro.matching.api")) == 1
        good = ("from repro.nn import Tensor, no_grad\n"
                "@no_grad()\n"
                "def predict_proba(model, x):\n"
                "    return model(Tensor(x)).data\n")
        assert not _only(good, "RA104", package="repro.matching.api")

    def test_ra104_delegation_counts(self):
        source = ("from repro.nn import Tensor, no_grad\n"
                  "def _infer(model, x):\n"
                  "    with no_grad():\n"
                  "        return model(Tensor(x))\n"
                  "def predict(model, x):\n"
                  "    return _infer(model, x).data\n")
        assert not _only(source, "RA104", package="repro.matching.api")

    def test_ra104_needs_nn_import(self):
        # Pure-numpy learners (magellan baselines) never record a tape.
        source = ("import numpy as np\n"
                  "def predict_proba(w, x):\n"
                  "    return x @ w\n")
        assert not _only(source, "RA104", package="repro.baselines.x")

    def test_ra105_unregistered_parameter(self):
        bad = ("from repro.nn import Module, Tensor\n"
               "class Layer(Module):\n"
               "    def __init__(self):\n"
               "        super().__init__()\n"
               "        self.scale = Tensor([1.0], requires_grad=True)\n")
        assert len(_only(bad, "RA105")) == 1
        good = bad.replace("Tensor([1.0], requires_grad=True)",
                           "Parameter([1.0])")
        assert not _only(good, "RA105")

    def test_ra106_mutable_default(self):
        source = "def f(x, acc=[], opts={}):\n    return x\n"
        assert len(_only(source, "RA106")) == 2

    def test_ra107_export_drift_both_directions(self):
        source = ('__all__ = ["gone"]\n'
                  "def present():\n"
                  '    """doc"""\n')
        hits = _only(source, "RA107")
        messages = " / ".join(v.message for v in hits)
        assert "gone" in messages and "present" in messages

    def test_ra110_forward_outside_no_grad(self):
        bad = ("from repro.nn import Tensor\n"
               "def match_all(pairs, classifier):\n"
               "    return [classifier(p) for p in pairs]\n"
               "def eval_loop(batches, model):\n"
               "    return [model.forward(b) for b in batches]\n")
        hits = _only(bad, "RA110", package="repro.matching.api")
        assert [v.line for v in hits] == [3, 5]
        good = bad.replace("from repro.nn import Tensor",
                           "from repro.nn import Tensor, no_grad")
        good = good.replace("return [classifier(p) for p in pairs]",
                            "with no_grad():\n"
                            "        return [classifier(p) for p in pairs]")
        good = good.replace("return [model.forward(b) for b in batches]",
                            "with no_grad():\n"
                            "        return [model.forward(b) "
                            "for b in batches]")
        assert not _only(good, "RA110", package="repro.matching.api")

    def test_ra110_delegation_and_inference_mode(self):
        source = ("from repro.nn import inference_mode\n"
                  "def _match_fast(pairs, model):\n"
                  "    with inference_mode():\n"
                  "        return [model(p) for p in pairs]\n"
                  "def match_many(pairs, model):\n"
                  "    return _match_fast(pairs, model)\n")
        assert not _only(source, "RA110", package="repro.matching.api")

    def test_ra110_needs_nn_import(self):
        source = ("import numpy as np\n"
                  "def match_all(pairs, classifier):\n"
                  "    return [classifier(p) for p in pairs]\n")
        assert not _only(source, "RA110", package="repro.baselines.x")

    def test_ra111_blocking_sleep_in_serve(self):
        bad = ("import time\n"
               "def wait_for_batch(cond):\n"
               "    time.sleep(0.005)\n"
               "    cond.wait(timeout=0.005)\n")
        hits = _only(bad, "RA111", package="repro.serve.service")
        assert [v.line for v in hits] == [3]

    def test_ra111_timed_threading_wait(self):
        source = ("def park(lock, event):\n"
                  "    event.wait(timeout=1.0)\n"
                  "    lock.acquire(timeout=1.0)\n")
        hits = _only(source, "RA111", package="repro.serve.service")
        assert [v.line for v in hits] == [2, 3]

    def test_ra111_clock_condition_waits_allowed(self):
        source = ("def park(cond, clock):\n"
                  "    cond.wait_for(lambda: True, timeout=1.0)\n"
                  "    clock.sleep(0.1)\n")
        assert not _only(source, "RA111", package="repro.serve.service")

    def test_ra111_only_applies_to_serve(self):
        source = "import time\ndef f():\n    time.sleep(1)\n"
        assert not _only(source, "RA111", package="repro.matching.api")
        assert not _only(source, "RA111", package="repro.serve.clock")
        assert _only(source, "RA111", package="repro.serve.sim")

    def test_ra112_bare_span_flagged(self):
        bad = ("def score(tracer, stages, pairs):\n"
               "    span = tracer.span('forward')\n"
               "    record = stages.stage('tokenize', pairs=len(pairs))\n"
               "    return pairs\n")
        hits = _only(bad, "RA112", package="repro.serve.backends")
        assert [v.line for v in hits] == [2, 3]
        assert _only(bad, "RA112", package="repro.matching.engine")

    def test_ra112_with_and_enter_context_allowed(self):
        good = ("from contextlib import ExitStack\n"
                "def score(tracer, stages, pairs):\n"
                "    with tracer.span('forward'):\n"
                "        pass\n"
                "    with ExitStack() as scope:\n"
                "        record = scope.enter_context(\n"
                "            stages.stage('tokenize', pairs=len(pairs)))\n"
                "    return record\n")
        assert not _only(good, "RA112", package="repro.serve.backends")

    def test_ra112_trace_start_without_with(self):
        bad = ("def admit(tracer, now):\n"
               "    tracer.start('request', start=now)\n")
        assert len(_only(bad, "RA112",
                         package="repro.serve.service")) == 1
        # Non-tracing receivers may call .start() bare (threads, the
        # service itself), and the cross-thread lifecycle API is exempt.
        fine = ("def boot(thread, tracer, request):\n"
                "    thread.start()\n"
                "    tracer.begin_request(request_id=request)\n")
        assert not _only(fine, "RA112", package="repro.serve.service")

    def test_ra112_only_applies_to_serve_and_matching(self):
        source = "def f(tracer):\n    return tracer.span('x')\n"
        assert not _only(source, "RA112", package="repro.obs.context")
        assert _only(source, "RA112", package="repro.serve.service")
        assert _only(source, "RA112", package="repro.matching.api")

    def test_ra118_tight_retry_loop_flagged(self):
        bad = ("def naive(service, a, b):\n"
               "    while True:\n"
               "        try:\n"
               "            return service.submit(a, b)\n"
               "        except ServiceOverloaded:\n"
               "            continue\n")
        hits = _only(bad, "RA118", package="tools.client")
        assert len(hits) == 1
        assert "backoff" in hits[0].message

    def test_ra118_backoff_between_attempts_allowed(self):
        good = ("def patient(service, clock, a, b):\n"
                "    while True:\n"
                "        try:\n"
                "            return service.submit(a, b)\n"
                "        except ServiceOverloaded as exc:\n"
                "            clock.sleep(exc.retry_after)\n")
        assert not _only(good, "RA118", package="tools.client")
        timer = ("def scheduled(service, policy, a, b):\n"
                 "    for attempt in range(1, 4):\n"
                 "        try:\n"
                 "            return service.submit(a, b)\n"
                 "        except ServeError:\n"
                 "            wait(policy.backoff(0, attempt))\n")
        assert not _only(timer, "RA118", package="tools.client")

    def test_ra118_reraising_handler_allowed(self):
        bail = ("def bail(service, a, b):\n"
                "    for _ in range(3):\n"
                "        try:\n"
                "            return service.submit(a, b)\n"
                "        except ServiceClosed:\n"
                "            raise\n")
        assert not _only(bail, "RA118", package="tools.client")

    def test_ra118_needs_submit_and_serve_error(self):
        no_submit = ("def poll(fetch):\n"
                     "    while True:\n"
                     "        try:\n"
                     "            return fetch()\n"
                     "        except RequestTimeout:\n"
                     "            continue\n")
        assert not _only(no_submit, "RA118", package="tools.client")
        foreign = ("def other(service, a, b):\n"
                   "    while True:\n"
                   "        try:\n"
                   "            return service.submit(a, b)\n"
                   "        except KeyError:\n"
                   "            continue\n")
        assert not _only(foreign, "RA118", package="tools.client")

    def test_ra119_raw_payload_arithmetic_flagged(self):
        bad = ("import numpy as np\n"
               "from repro.nn import ACC_DTYPE\n"
               "def qforward(x, quantized, w_int8, scale):\n"
               "    out = x @ quantized.q.T\n"
               "    y = w_int8 * scale\n"
               "    return out, y, np.matmul(x, quantized.q)\n")
        hits = _only(bad, "RA119", package="tools.quantized")
        assert len(hits) == 3
        assert all("float64" in hit.message for hit in hits)

    def test_ra119_cast_payload_allowed(self):
        good = ("import numpy as np\n"
                "from repro.nn import ACC_DTYPE\n"
                "def qforward(x, quantized, w_int8):\n"
                "    a = x @ quantized.q.astype(ACC_DTYPE).T\n"
                "    b = quantized.q32 @ x\n"
                "    c = x @ w_int8.astype(ACC_DTYPE)\n"
                "    shape = quantized.q.shape\n"
                "    return a, b, c, shape\n")
        assert not _only(good, "RA119", package="tools.quantized")

    def test_ra119_bare_q_is_the_attention_query(self):
        # A float array named `q` (the attention query) is not a quant
        # payload; only the .q attribute / q8-int8 names match.
        fine = ("import numpy as np\n"
                "from repro.nn import ACC_DTYPE\n"
                "def attention(q, k, v, scale):\n"
                "    return (q @ np.swapaxes(k, -1, -2)) * scale\n")
        assert not _only(fine, "RA119", package="tools.quantized")

    def test_ra119_only_applies_to_nn_importers(self):
        source = ("def f(x, quantized):\n"
                  "    return x @ quantized.q.T\n")
        assert not _only(source, "RA119", package="tools.quantized")

    def test_ra120_itertools_product_over_records_flagged(self):
        bad = ("import itertools\n"
               "def pair_all(records_a, records_b):\n"
               "    return list(itertools.product(records_a, "
               "records_b))\n")
        hits = _only(bad, "RA120", package="repro.evaluation.pairing")
        assert len(hits) == 1
        assert "cross product" in hits[0].message

    def test_ra120_nested_comprehension_flagged(self):
        bad = ("def pair_all(records):\n"
               "    return [(a, b) for a in records for b in records]\n")
        hits = _only(bad, "RA120", package="repro.evaluation.pairing")
        assert len(hits) == 1

    def test_ra120_blocking_module_exempt(self):
        source = ("import itertools\n"
                  "def pair_all(records_a, records_b):\n"
                  "    return list(itertools.product(records_a, "
                  "records_b))\n")
        assert not _only(source, "RA120", package="repro.data.blocking")

    def test_ra120_non_record_product_allowed(self):
        fine = ("import itertools\n"
                "def grid(widths, heights):\n"
                "    return list(itertools.product(widths, heights))\n"
                "def single(records, flags):\n"
                "    return [(r, f) for r in records for f in flags]\n")
        assert not _only(fine, "RA120", package="repro.evaluation.grid")

    def test_ra108_legacy_global_rng(self):
        source = ("import numpy as np\n"
                  "a = np.random.rand(3)\n"
                  "rng = np.random.default_rng(0)\n")
        hits = _only(source, "RA108")
        assert len(hits) == 1 and hits[0].line == 2

    def test_formatters(self):
        hits = lint_source("def f(x, acc=[]):\n    return acc\n",
                           path="snippet.py")
        text = format_text(hits)
        assert "snippet.py:1" in text and "RA106" in text
        payload = json.loads(format_json(hits))
        assert payload["count"] == 1
        assert payload["violations"][0]["rule"] == "RA106"
        assert json.loads(format_json([])) == {"violations": [],
                                               "count": 0}


def _nan_op(t):
    """An op that injects a NaN through the public tape API."""
    mask = np.zeros(t.shape, dtype=bool)
    mask.flat[0] = True
    return t.masked_fill(mask, float("nan"))


class TestSanitizer:
    def test_forward_nan_names_op(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with detect_anomalies():
            with pytest.raises(AnomalyError) as err:
                _nan_op(x)
        assert err.value.op == "masked_fill"
        assert err.value.phase == "forward"
        assert "masked_fill" in str(err.value)

    def test_backward_inf_names_op(self):
        x = Tensor(np.array([0.0, 1.0]), requires_grad=True)
        with detect_anomalies():
            y = (x ** 0.5).sum()
            with pytest.raises(AnomalyError) as err:
                with np.errstate(divide="ignore"):
                    y.backward()
        assert err.value.op == "pow"
        assert err.value.phase == "backward"

    def test_span_path_in_message(self):
        x = Tensor(np.ones(4), requires_grad=True)
        with trace("unit-test-span"), detect_anomalies():
            with pytest.raises(AnomalyError) as err:
                _nan_op(x)
        assert "unit-test-span" in str(err.value)
        assert err.value.span_path == "unit-test-span"

    def test_dead_parameter_detected(self):
        used = Tensor(np.ones(3), requires_grad=True)
        unused = Tensor(np.ones(3), requires_grad=True)
        with detect_anomalies(parameters=[used, unused]):
            with pytest.raises(AnomalyError) as err:
                (used * 2.0).sum().backward()
        assert "never received a gradient" in str(err.value)

    def test_dead_reachable_leaf_detected(self):
        # A hand-rolled op whose backward forgets its parent entirely.
        t = Tensor(np.ones(3), requires_grad=True)
        out = t._make(t.data * 1.0, (t,))

        def _backward(grad):
            pass

        out._backward = _backward
        with detect_anomalies():
            with pytest.raises(AnomalyError) as err:
                out.sum().backward()
        assert "received no gradient" in str(err.value)

    def test_gradient_shape_mismatch_detected(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        out = t._make(t.data.sum(axis=0), (t,))

        def _backward(grad, a=t):
            a._accumulate(grad)   # forgets to broadcast back to (2, 3)

        out._backward = _backward
        with detect_anomalies(check_dead_leaves=False):
            with pytest.raises(AnomalyError) as err:
                out.sum().backward()
        assert "shape" in str(err.value)

    def test_silent_promotion_detected(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)

        def promoting_op(tensor):
            return tensor._make(tensor.data.astype(np.float64), (tensor,))

        with detect_anomalies():
            with pytest.raises(AnomalyError) as err:
                promoting_op(t)
        assert err.value.op == "promoting_op"
        assert "promoted" in str(err.value)

    def test_clean_training_step_passes(self):
        rng = np.random.default_rng(0)
        w = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        x = Tensor(rng.normal(size=(3, 4)))
        with detect_anomalies(parameters=[w]):
            loss = ((x @ w).tanh() ** 2).sum()
            loss.backward()
        assert np.isfinite(w.grad).all()

    def test_hooks_restored_even_on_error(self):
        orig_make, orig_backward = Tensor._make, Tensor.backward
        assert not is_sanitizing()
        with pytest.raises(AnomalyError):
            with detect_anomalies():
                assert is_sanitizing()
                assert Tensor._make is not orig_make
                _nan_op(Tensor(np.ones(2), requires_grad=True))
        assert Tensor._make is orig_make
        assert Tensor.backward is orig_backward
        assert not is_sanitizing()

    def test_nesting_forbidden(self):
        with detect_anomalies():
            with pytest.raises(RuntimeError, match="nested"):
                with detect_anomalies():
                    pass

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            detect_anomalies(check_promotion="loudly")


class TestAuditor:
    def test_ops_enumerated(self):
        ops = tensor_ops()
        assert {"matmul", "softmax", "layer_norm", "getitem", "sum",
                "sqrt", "mean", "embedding"} <= set(ops)
        assert "backward" not in ops and "zero_grad" not in ops

    def test_module_classes_transitive(self):
        modules = module_classes()
        assert "BertModel" in modules
        assert "RobertaModel" in modules     # inherits Module via BertModel
        assert not any(name.startswith("_") for name in modules)

    def test_coverage_is_complete(self):
        report = audit_coverage(tests_root=TESTS)
        assert report.is_complete(), "\n" + report.as_text()

    def test_report_formats(self):
        report = audit_coverage(tests_root=TESTS)
        payload = json.loads(report.as_json())
        assert payload["uncovered_ops"] == []
        assert payload["uncovered_modules"] == []
        assert payload["ops"]["matmul"]["covered"] is True
        assert "coverage complete" in report.as_text()

    def test_gaps_detected_against_empty_suite(self, tmp_path):
        (tmp_path / "test_nothing.py").write_text("def test_noop():\n"
                                                  "    assert True\n")
        report = audit_coverage(tests_root=tmp_path)
        assert report.uncovered_ops and report.uncovered_modules
        assert not report.is_complete()


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        assert main(["lint", str(SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_lint_violation_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n")
        assert main(["lint", str(bad)]) == 1
        assert "RA106" in capsys.readouterr().out

    def test_lint_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x, acc=[]):\n    return acc\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1

    def test_lint_rule_filter(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\n"
                       "def f(x, acc=[]):\n"
                       "    return np.random.rand(3)\n")
        assert main(["lint", str(bad), "--rules", "RA108"]) == 1
        out = capsys.readouterr().out
        assert "RA108" in out and "RA106" not in out

    def test_lint_unknown_rule_exit_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path), "--rules", "RA999"]) == 2

    def test_audit_strict_exit_zero(self, capsys):
        assert main(["audit", "--strict", "--tests", str(TESTS)]) == 0
        assert "0 uncovered" in capsys.readouterr().out

    def test_audit_json(self, capsys):
        assert main(["audit", "--format", "json",
                     "--tests", str(TESTS)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["uncovered_ops"] == []

    def test_audit_strict_fails_on_gap(self, tmp_path, capsys):
        (tmp_path / "test_nothing.py").write_text("def test_noop():\n"
                                                  "    assert True\n")
        assert main(["audit", "--strict", "--tests", str(tmp_path)]) == 1
