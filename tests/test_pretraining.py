"""Pre-training: corpus, objectives, trainer, distillation, model zoo."""

import numpy as np
import pytest

from repro.pretraining import (DistillationRecipe, IGNORE_INDEX,
                               PretrainRecipe, ZooSettings,
                               build_nsp_examples, clear_zoo, distill,
                               generate_corpus, generate_documents,
                               get_pretrained, mask_tokens, pretrain,
                               sample_permutation_batch)
from repro.pretraining.corpus import generate_labeled_documents
from repro.pretraining.model_zoo import _train_tokenizer
from repro.models import default_config
from repro.utils import child_rng


class TestCorpus:
    def test_corpus_size_and_content(self, rng):
        corpus = generate_corpus(rng, 30)
        assert len(corpus) == 30
        assert all(isinstance(s, str) and s for s in corpus)

    def test_documents_are_multi_sentence(self, rng):
        docs = generate_documents(rng, 10)
        assert len(docs) == 10
        assert all(3 <= len(d) <= 7 for d in docs)

    def test_labeled_documents_have_known_domains(self, rng):
        labeled = generate_labeled_documents(rng, 40)
        domains = {d for d, _ in labeled}
        known = {"products", "music", "citation", "products-listing",
                 "music-listing", "citation-listing"}
        assert domains <= known
        assert len(domains) >= 3

    def test_document_sentences_share_entity_words(self, rng):
        labeled = generate_labeled_documents(rng, 30)
        overlaps = []
        for _, doc in labeled:
            a = set(doc[0].split())
            b = set(doc[1].split())
            overlaps.append(len(a & b) / max(min(len(a), len(b)), 1))
        assert np.mean(overlaps) > 0.3

    def test_deterministic(self):
        a = generate_corpus(child_rng(0, "c"), 15)
        b = generate_corpus(child_rng(0, "c"), 15)
        assert a == b


class TestMLM:
    def _vocab(self):
        return _train_tokenizer(
            "bert", ZooSettings(tokenizer_sentences=80, vocab_size=120),
            0).vocab

    def test_masking_statistics(self, rng):
        vocab = self._vocab()
        ids = rng.integers(5, len(vocab), size=(20, 30))
        batch = mask_tokens(ids, vocab, rng)
        changed = batch.targets != IGNORE_INDEX
        assert 0.05 < changed.mean() < 0.30
        # Most selected positions got the [MASK] token.
        masked = batch.input_ids == vocab.mask_id
        assert masked.sum() >= 0.5 * changed.sum()

    def test_targets_are_original_tokens(self, rng):
        vocab = self._vocab()
        ids = rng.integers(5, len(vocab), size=(4, 20))
        batch = mask_tokens(ids, vocab, rng)
        selected = batch.targets != IGNORE_INDEX
        assert np.all(batch.targets[selected] == ids[selected])

    def test_special_positions_never_masked(self, rng):
        vocab = self._vocab()
        ids = np.full((4, 10), vocab.cls_id)
        ids[:, 5:] = 7
        batch = mask_tokens(ids, vocab, rng)
        assert np.all(batch.targets[:, :5] == IGNORE_INDEX)

    def test_at_least_one_prediction_per_row(self, rng):
        vocab = self._vocab()
        ids = rng.integers(5, len(vocab), size=(50, 8))
        batch = mask_tokens(ids, vocab, rng, mask_probability=0.01)
        assert np.all((batch.targets != IGNORE_INDEX).any(axis=1))


class TestNSP:
    def test_mix_of_labels(self, rng):
        docs = generate_documents(rng, 20)
        examples = build_nsp_examples(docs, rng, 100)
        labels = [e.is_next for e in examples]
        assert 0.3 < np.mean(labels) < 0.7

    def test_coherent_fraction_one(self, rng):
        docs = generate_documents(rng, 10)
        examples = build_nsp_examples(docs, rng, 50, coherent_fraction=1.0)
        assert all(e.is_next == 1 for e in examples)

    def test_positive_pairs_are_consecutive(self, rng):
        docs = generate_documents(rng, 10)
        sentence_to_doc = {}
        for i, doc in enumerate(docs):
            for s in doc:
                sentence_to_doc.setdefault(s, i)
        for e in build_nsp_examples(docs, rng, 60):
            if e.is_next:
                assert sentence_to_doc.get(e.first) == \
                    sentence_to_doc.get(e.second)

    def test_hard_negatives_same_domain(self, rng):
        labeled = generate_labeled_documents(rng, 40)
        docs = [d for _, d in labeled]
        domains = [x for x, _ in labeled]
        sentence_domain = {}
        for (domain, doc) in labeled:
            for s in doc:
                sentence_domain.setdefault(s, domain)
        examples = build_nsp_examples(docs, rng, 80, domains=domains)
        for e in examples:
            if not e.is_next:
                assert sentence_domain[e.first] == sentence_domain[e.second]

    def test_requires_multi_sentence_document(self, rng):
        with pytest.raises(ValueError):
            build_nsp_examples([["only one"]], rng, 5)

    def test_domains_alignment_checked(self, rng):
        docs = generate_documents(rng, 5)
        with pytest.raises(ValueError):
            build_nsp_examples(docs, rng, 5, domains=["products"])


class TestPLM:
    def test_targets_subset_of_order_tail(self, rng):
        vocab = _train_tokenizer(
            "bert", ZooSettings(tokenizer_sentences=80, vocab_size=120),
            0).vocab
        ids = rng.integers(5, len(vocab), size=(4, 24))
        batch = sample_permutation_batch(ids, vocab, rng)
        predicted_positions = set(
            np.flatnonzero((batch.targets != IGNORE_INDEX).any(axis=0)))
        tail = set(batch.order[-max(len(predicted_positions), 1):]
                   .tolist()) | set(batch.order[-4:].tolist())
        assert predicted_positions <= set(batch.order.tolist())
        n_predict = max(int(round(24 / 6.0)), 1)
        assert predicted_positions <= set(batch.order[-n_predict:].tolist())

    def test_inputs_unchanged(self, rng):
        vocab = _train_tokenizer(
            "bert", ZooSettings(tokenizer_sentences=80, vocab_size=120),
            0).vocab
        ids = rng.integers(5, len(vocab), size=(2, 12))
        batch = sample_permutation_batch(ids, vocab, rng)
        assert np.array_equal(batch.input_ids, ids)


class TestTrainerAndZoo:
    def test_pretrain_reduces_loss(self, tiny_settings):
        tokenizer = _train_tokenizer("bert", tiny_settings, 0)
        config = default_config(
            "bert", vocab_size=len(tokenizer.vocab), d_model=32,
            num_layers=2, num_heads=2, max_position=64)
        recipe = PretrainRecipe(steps=40, num_examples=120,
                                num_documents=40, seq_len=32, use_nsp=True)
        result = pretrain(config, tokenizer, recipe,
                          child_rng(0, "test-pretrain"))
        early = np.mean(result.loss_history[:10])
        late = np.mean(result.loss_history[-10:])
        assert late < early

    def test_zoo_caches_checkpoints(self, tiny_bert, tiny_settings,
                                    tiny_zoo_dir):
        again = get_pretrained("bert", seed=0, settings=tiny_settings,
                               zoo_dir=tiny_zoo_dir)
        assert again.from_cache
        base = tiny_bert.backbone.state_dict()
        for name, value in again.backbone.state_dict().items():
            assert np.allclose(value, base[name])

    def test_zoo_architectures_differ(self, tiny_bert, tiny_roberta):
        assert tiny_bert.config.arch == "bert"
        assert tiny_roberta.config.arch == "roberta"
        assert type(tiny_bert.tokenizer) is not type(tiny_roberta.tokenizer)

    def test_distilbert_is_half_depth(self, tiny_bert, tiny_distilbert):
        assert (tiny_distilbert.config.num_layers
                == max(tiny_bert.config.num_layers // 2, 1))

    def test_xlnet_checkpoint(self, tiny_xlnet):
        assert tiny_xlnet.config.arch == "xlnet"
        assert tiny_xlnet.tokenizer.cls_at_end

    def test_clear_zoo(self, tmp_path, tiny_settings):
        get_pretrained("bert", seed=1, settings=tiny_settings,
                       zoo_dir=tmp_path)
        assert clear_zoo(tmp_path) >= 1
        assert not list(tmp_path.glob("*.npz"))

    def test_unknown_arch_raises(self, tiny_settings, tmp_path):
        with pytest.raises(ValueError):
            get_pretrained("gpt", settings=tiny_settings, zoo_dir=tmp_path)

    def test_distillation_runs(self, tiny_bert, tiny_settings):
        from repro.models import build_pretraining_head
        teacher_head = build_pretraining_head(tiny_bert.config,
                                              child_rng(0, "th"))
        student_config = default_config(
            "distilbert", vocab_size=len(tiny_bert.tokenizer.vocab),
            d_model=32, num_layers=2, num_heads=2, max_position=64)
        recipe = DistillationRecipe(steps=10, num_sentences=60, seq_len=32)
        result = distill(student_config, tiny_bert.backbone, teacher_head,
                         tiny_bert.tokenizer, recipe, child_rng(0, "d"))
        assert len(result.loss_history) > 0
        assert result.backbone.config.arch == "distilbert"
