"""Inference fast path: fused kernels, bucketed batching, token cache.

Three contracts anchor the whole ``repro.perf`` layer:

1. fused kernels change *when* math runs, never *what* it computes —
   logits are bit-identical to the op-by-op forward;
2. the fused path is structurally unreachable while gradients are
   enabled, so training can never silently skip the tape;
3. the bucketed ``match_many`` engine returns the same decisions in the
   same order as the serial path, with per-pair isolation intact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.data import load_benchmark, split_dataset
from repro.matching import (EncodedPairs, EntityMatcher, FineTuneConfig,
                            encode_dataset, iter_bucketed)
from repro.nn import (Tensor, fused_kernels, inference_mode,
                      is_fused_enabled, is_grad_enabled, no_grad)
from repro.obs import MetricsRegistry
from repro.perf import (LRUCache, TokenizationCache, ensure_token_cache,
                        is_left_padded, plan_buckets, real_lengths,
                        run_perf_benchmark, trim_length, validate_report,
                        write_report)
from repro.utils import child_rng

pytestmark = pytest.mark.perf

BENCH_SCRIPT = Path(__file__).parent.parent / "benchmarks" / "bench_perf.py"

ARCH_FIXTURES = ["tiny_bert", "tiny_roberta", "tiny_distilbert",
                 "tiny_xlnet"]


@pytest.fixture(scope="module")
def tiny_splits():
    data = load_benchmark("dblp-acm", seed=7, scale=0.04)
    return split_dataset(data, child_rng(7, "split", "dblp-acm"))


@pytest.fixture(scope="module")
def fitted_bert(tiny_settings, tiny_zoo_dir, tiny_splits):
    matcher = EntityMatcher(
        "bert", seed=0, zoo_settings=tiny_settings, zoo_dir=tiny_zoo_dir,
        finetune_config=FineTuneConfig(epochs=1, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(tiny_splits.train)
    return matcher


def _record_pairs(splits, n):
    pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    return [pairs[i % len(pairs)] for i in range(n)]


class TestFusedBitIdentity:
    """Contract 1: same bits, whichever kernel path ran."""

    @pytest.mark.parametrize("fixture", ARCH_FIXTURES)
    def test_backbone_output_bit_identical(self, request, fixture,
                                           tiny_splits):
        pretrained = request.getfixturevalue(fixture)
        encoded = encode_dataset(tiny_splits.test, pretrained.tokenizer,
                                 max_length=32)
        ids = encoded.input_ids[:8]
        segs = encoded.segment_ids[:8]
        pads = encoded.pad_masks[:8]

        with no_grad(), fused_kernels(False):
            reference = pretrained.backbone(
                ids, segment_ids=segs, pad_mask=pads).data.copy()
        with no_grad():
            assert is_fused_enabled()
            fused = pretrained.backbone(
                ids, segment_ids=segs, pad_mask=pads).data
        taped = pretrained.backbone(
            ids, segment_ids=segs, pad_mask=pads).data

        assert fused.dtype == reference.dtype
        assert np.array_equal(reference, fused)
        assert np.array_equal(reference, taped)


class TestFusedGating:
    """Contract 2: fused implies no tape, structurally."""

    def test_fused_only_active_without_gradients(self):
        assert is_grad_enabled()
        assert not is_fused_enabled()
        with no_grad():
            assert is_fused_enabled()
            with fused_kernels(False):
                assert not is_fused_enabled()
            assert is_fused_enabled()
        assert not is_fused_enabled()

    def test_gradients_flow_with_fused_globally_on(self, tiny_bert,
                                                   tiny_splits):
        encoded = encode_dataset(tiny_splits.test, tiny_bert.tokenizer,
                                 max_length=32)
        with fused_kernels(True):
            hidden = tiny_bert.backbone(
                encoded.input_ids[:2],
                segment_ids=encoded.segment_ids[:2],
                pad_mask=encoded.pad_masks[:2])
            assert hidden.requires_grad
            hidden.sum().backward()
        grads = [p.grad for p in tiny_bert.backbone.parameters()]
        assert any(g is not None and np.abs(g).sum() > 0 for g in grads)
        tiny_bert.backbone.zero_grad()

    def test_no_grad_restored_after_exception(self):
        with pytest.raises(ValueError):
            with no_grad():
                assert not is_grad_enabled()
                raise ValueError("boom")
        assert is_grad_enabled()

    def test_inference_mode_restored_after_exception(self):
        with pytest.raises(RuntimeError):
            with inference_mode():
                assert not is_grad_enabled() and is_fused_enabled()
                raise RuntimeError("boom")
        assert is_grad_enabled()
        assert not is_fused_enabled()

    def test_decorator_restores_after_exception(self):
        @no_grad()
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            boom()
        assert is_grad_enabled()

    def test_nested_mixed_contexts_unwind_in_order(self):
        with no_grad():
            with fused_kernels(False):
                assert not is_fused_enabled()
                with no_grad():
                    assert not is_grad_enabled()
                assert not is_grad_enabled()
            assert is_fused_enabled()
        assert is_grad_enabled()


class TestLRUCache:
    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is LRU
        cache.put("c", 3)
        assert cache.evictions == 1
        assert "b" not in cache and "a" in cache and "c" in cache

    def test_hit_rate(self):
        cache = LRUCache(maxsize=4)
        assert cache.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)


class TestTokenizationCache:
    def test_lookup_memoizes_and_counts(self):
        registry = MetricsRegistry()
        cache = TokenizationCache(maxsize=8, registry=registry)
        calls = []

        def compute(text):
            calls.append(text)
            return [1, 2, 3]

        first = cache.lookup("alpha", compute)
        second = cache.lookup("alpha", compute)
        assert first == second == [1, 2, 3]
        assert calls == ["alpha"]
        assert registry.counter("perf.token_cache.hits").value == 1
        assert registry.counter("perf.token_cache.misses").value == 1

    def test_returned_lists_are_isolated(self):
        cache = TokenizationCache(maxsize=8,
                                  registry=MetricsRegistry())
        ids = cache.lookup("alpha", lambda text: [1, 2, 3])
        ids.pop()  # pair truncation mutates its id lists
        assert cache.lookup("alpha", lambda text: []) == [1, 2, 3]

    def test_eviction_counter(self):
        registry = MetricsRegistry()
        cache = TokenizationCache(maxsize=1, registry=registry)
        cache.lookup("a", lambda text: [1])
        cache.lookup("b", lambda text: [2])
        assert registry.counter("perf.token_cache.evictions").value == 1

    def test_ensure_token_cache_idempotent(self, tiny_bert):
        tokenizer = tiny_bert.tokenizer
        saved = tokenizer.cache
        tokenizer.cache = None
        try:
            cache = ensure_token_cache(tokenizer, maxsize=16)
            assert ensure_token_cache(tokenizer) is cache
        finally:
            tokenizer.cache = saved

    def test_cached_encoding_matches_uncached(self, tiny_bert):
        tokenizer = tiny_bert.tokenizer
        saved = tokenizer.cache
        tokenizer.cache = None
        try:
            plain = tokenizer.encode("entity matching with transformers")
            tokenizer.cache = TokenizationCache(
                maxsize=8, registry=MetricsRegistry())
            warm = tokenizer.encode("entity matching with transformers")
            hit = tokenizer.encode("entity matching with transformers")
            assert plain == warm == hit
            assert tokenizer.cache.hits == 1
        finally:
            tokenizer.cache = saved


class TestBucketing:
    def test_plan_buckets_is_a_permutation(self, rng):
        lengths = rng.integers(1, 33, size=57)
        buckets = plan_buckets(lengths, batch_size=8)
        flat = np.concatenate(buckets)
        assert sorted(flat.tolist()) == list(range(57))
        # Within the sorted order, lengths are non-decreasing.
        assert (np.diff(lengths[flat]) >= 0).all()

    def test_plan_buckets_stable_for_ties(self):
        buckets = plan_buckets(np.array([5, 5, 5, 5]), batch_size=2)
        assert [b.tolist() for b in buckets] == [[0, 1], [2, 3]]

    def test_real_lengths_and_trim(self):
        pads = np.array([[False, False, True, True],
                         [False, False, False, True]])
        assert real_lengths(pads).tolist() == [2, 3]
        assert trim_length(pads) == 3
        assert not is_left_padded(pads)
        assert is_left_padded(pads[:, ::-1])

    def test_iter_bucketed_trims_right_padded(self):
        pads = np.zeros((4, 8), dtype=bool)
        pads[:, 4:] = True  # every row: 4 real tokens, 4 pads
        encoded = EncodedPairs(
            np.arange(32).reshape(4, 8), np.zeros((4, 8), dtype=np.int64),
            pads, np.zeros(4, dtype=np.int64), np.zeros(4, dtype=np.int64))
        batches = list(iter_bucketed(encoded, batch_size=2))
        assert len(batches) == 2
        for indices, batch in batches:
            assert batch.input_ids.shape == (2, 4)
            assert not batch.pad_masks.any()

    def test_iter_bucketed_keeps_left_padded_width(self):
        pads = np.zeros((3, 8), dtype=bool)
        pads[:, :3] = True  # XLNet-style: padding on the left
        encoded = EncodedPairs(
            np.arange(24).reshape(3, 8), np.zeros((3, 8), dtype=np.int64),
            pads, np.full(3, 7, dtype=np.int64),
            np.zeros(3, dtype=np.int64))
        for indices, batch in iter_bucketed(encoded, batch_size=2):
            assert batch.input_ids.shape[1] == 8

    def test_iter_bucketed_empty(self):
        encoded = EncodedPairs(
            np.zeros((0, 4), dtype=np.int64), np.zeros((0, 4), np.int64),
            np.zeros((0, 4), dtype=bool), np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64))
        assert list(iter_bucketed(encoded, batch_size=4)) == []


class TestMatchManyFast:
    """Contract 3: bucketed engine == serial engine, order preserved."""

    def test_fast_matches_serial(self, fitted_bert, tiny_splits):
        pairs = _record_pairs(tiny_splits, 24)
        tokenizer = fitted_bert.pretrained.tokenizer
        saved = tokenizer.cache
        tokenizer.cache = None
        try:
            with fused_kernels(False):
                serial = fitted_bert.match_many(pairs, fast=False)
        finally:
            tokenizer.cache = saved
        fast = fitted_bert.match_many(pairs, fast=True, batch_size=7)

        assert [o.index for o in fast] == list(range(len(pairs)))
        assert [o.matched for o in fast] == [o.matched for o in serial]
        assert not any(o.degraded for o in fast)
        np.testing.assert_allclose(
            [o.probability for o in fast],
            [o.probability for o in serial], atol=1e-5)

    def test_overridden_match_probability_routes_serial(self, fitted_bert,
                                                        tiny_splits):
        pairs = _record_pairs(tiny_splits, 3)
        fitted_bert.match_probability = lambda a, b: 0.75
        try:
            outcomes = fitted_bert.match_many(pairs)
        finally:
            del fitted_bert.match_probability
        assert all(o.probability == 0.75 and o.matched for o in outcomes)

    def test_encode_failure_degrades_only_that_pair(self, fitted_bert,
                                                    tiny_splits):
        pairs = _record_pairs(tiny_splits, 5) + [(object(), object())]
        outcomes = fitted_bert.match_many(pairs, fast=True,
                                          fallback=False)
        assert outcomes[-1].degraded and not outcomes[-1].matched
        assert outcomes[-1].error
        assert not any(o.degraded for o in outcomes[:-1])

    def test_forward_failure_retries_per_pair(self, fitted_bert,
                                              tiny_splits, monkeypatch):
        pairs = _record_pairs(tiny_splits, 6)
        classifier = fitted_bert._result.classifier
        real = type(classifier).predict_proba
        calls = {"n": 0}

        def flaky(self, input_ids, **kwargs):
            calls["n"] += 1
            if len(input_ids) > 1:  # poison every *batched* forward
                raise RuntimeError("batch blew up")
            return real(self, input_ids, **kwargs)

        monkeypatch.setattr(type(classifier), "predict_proba", flaky)
        outcomes = fitted_bert.match_many(pairs, fast=True, batch_size=6)
        assert not any(o.degraded for o in outcomes)
        assert calls["n"] == 7  # 1 failed batch + 6 single-row retries


class TestBenchReport:
    def test_smoke_report_schema_and_consistency(self, tiny_zoo_dir,
                                                 tmp_path):
        report = run_perf_benchmark(archs=("bert",), smoke=True,
                                    zoo_dir=tiny_zoo_dir)
        assert validate_report(report) == []
        assert report["smoke"] is True
        entry = report["architectures"]["bert"]
        assert entry["decisions_consistent"]
        assert entry["fast_pairs_per_sec"] > 0
        path = write_report(report, tmp_path / "BENCH_perf.json")
        assert validate_report(json.loads(path.read_text())) == []

    def test_validate_report_flags_gaps(self):
        problems = validate_report({"benchmark": "other"})
        assert any("architectures" not in p for p in problems)
        assert any("must be 'perf'" in p for p in problems)

    def test_bench_script_smoke(self, tiny_zoo_dir, tmp_path):
        out = tmp_path / "BENCH_perf.json"
        proc = subprocess.run(
            [sys.executable, str(BENCH_SCRIPT), "--smoke",
             "--archs", "bert", "--zoo-dir", str(tiny_zoo_dir),
             "--output", str(out)],
            cwd=BENCH_SCRIPT.parent, capture_output=True, text=True,
            env={**os.environ,
                 "PYTHONPATH": f"{BENCH_SCRIPT.parent.parent / 'src'}:."},
            check=False)
        assert proc.returncode == 0, proc.stderr
        report = json.loads(out.read_text())
        assert validate_report(report) == []
        assert report["smoke"] is True
