"""Module system, layers, attention, RNN cells, losses, optimizers."""

import numpy as np
import pytest

from repro.nn import (Adam, BiRNN, ConstantSchedule, Dropout, Embedding,
                      GRUCell, LayerNorm, Linear, LinearSchedule, LSTMCell,
                      Module, ModuleList, MultiHeadAttention, Parameter,
                      SGD, Sequential, Tensor, binary_cross_entropy_with_logits,
                      clip_grad_norm, cosine_embedding_loss, cross_entropy,
                      distillation_loss, load_checkpoint, mse_loss, no_grad,
                      padding_attention_mask, save_checkpoint)

from conftest import numerical_gradient


class TestModuleSystem:
    def test_named_parameters_nested(self, rng):
        class Child(Module):
            def __init__(self):
                super().__init__()
                self.w = Parameter(np.ones(2))

        class Root(Module):
            def __init__(self):
                super().__init__()
                self.child = Child()
                self.bias = Parameter(np.zeros(3))

        names = dict(Root().named_parameters())
        assert set(names) == {"child.w", "bias"}

    def test_state_dict_roundtrip(self, rng):
        lin = Linear(4, 3, rng)
        other = Linear(4, 3, rng)
        other.load_state_dict(lin.state_dict())
        assert np.allclose(lin.weight.data, other.weight.data)

    def test_load_state_dict_missing_key_raises(self, rng):
        lin = Linear(4, 3, rng)
        state = lin.state_dict()
        del state["bias"]
        with pytest.raises(KeyError):
            lin.load_state_dict(state)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        lin = Linear(4, 3, rng)
        state = lin.state_dict()
        state["weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            lin.load_state_dict(state)

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng), Dropout(0.5, rng))
        seq.eval()
        assert all(not m.training for m in seq.modules())
        seq.train()
        assert all(m.training for m in seq.modules())

    def test_module_list_indexing(self, rng):
        layers = ModuleList([Linear(2, 2, rng) for _ in range(3)])
        assert len(layers) == 3
        assert layers[1] is list(layers)[1]
        assert len(layers.parameters()) == 6

    def test_num_parameters(self, rng):
        lin = Linear(4, 3, rng)
        assert lin.num_parameters() == 4 * 3 + 3


class TestLayers:
    def test_linear_shape_and_value(self, rng):
        lin = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4))
        out = lin(Tensor(x))
        expected = x @ lin.weight.data.T + lin.bias.data
        assert np.allclose(out.data, expected, atol=1e-6)

    def test_linear_no_bias(self, rng):
        lin = Linear(4, 3, rng, bias=False)
        assert lin.bias is None
        assert len(lin.parameters()) == 1

    def test_embedding_out_of_range_raises(self, rng):
        emb = Embedding(5, 3, rng)
        with pytest.raises(IndexError):
            emb(np.array([[0, 5]]))

    def test_embedding_lookup(self, rng):
        emb = Embedding(5, 3, rng)
        out = emb(np.array([[1, 4]]))
        assert np.allclose(out.data[0, 0], emb.weight.data[1])

    def test_layernorm_trains(self, rng):
        ln = LayerNorm(4)
        out = ln(Tensor(rng.normal(size=(2, 4)), requires_grad=True))
        out.sum().backward()
        assert ln.weight.grad is not None

    def test_dropout_eval_is_identity(self, rng):
        drop = Dropout(0.9, rng)
        drop.eval()
        x = Tensor(rng.normal(size=(5,)))
        assert np.allclose(drop(x).data, x.data)

    def test_dropout_invalid_p(self, rng):
        with pytest.raises(ValueError):
            Dropout(1.0, rng)

    def test_sequential_order(self, rng):
        seq = Sequential(Linear(2, 3, rng), Linear(3, 1, rng))
        out = seq(Tensor(rng.normal(size=(4, 2))))
        assert out.shape == (4, 1)
        assert len(seq) == 2


class TestAttention:
    def test_output_shape(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        out = mha(Tensor(rng.normal(size=(2, 5, 8))))
        assert out.shape == (2, 5, 8)

    def test_invalid_heads_raises(self, rng):
        with pytest.raises(ValueError):
            MultiHeadAttention(7, 2, rng)

    def test_padding_mask_blocks_positions(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        x = rng.normal(size=(1, 4, 8))
        pad = np.array([[False, False, False, True]])
        base = mha(Tensor(x), attention_mask=padding_attention_mask(pad))
        x2 = x.copy()
        x2[0, 3] = 99.0  # content of masked key must not matter
        changed = mha(Tensor(x2),
                      attention_mask=padding_attention_mask(pad))
        assert np.allclose(base.data[:, :3], changed.data[:, :3], atol=1e-4)

    def test_gradients_flow_to_all_projections(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0)
        out = mha(Tensor(rng.normal(size=(2, 4, 8)), requires_grad=True))
        (out ** 2).sum().backward()
        for p in mha.parameters():
            assert p.grad is not None

    def test_match_bias_shifts_attention(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0, match_bias=True)
        x = rng.normal(size=(1, 4, 8))
        match = np.zeros((1, 4, 4), dtype=np.float32)
        base = mha(Tensor(x), match_scores=match)
        match2 = match.copy()
        match2[0, 0, 2] = 5.0
        biased = mha(Tensor(x), match_scores=match2)
        assert not np.allclose(base.data[0, 0], biased.data[0, 0])

    def test_match_gain_is_trainable(self, rng):
        mha = MultiHeadAttention(8, 2, rng, dropout=0.0, match_bias=True)
        x = Tensor(rng.normal(size=(1, 4, 8)), requires_grad=True)
        match = rng.normal(size=(1, 4, 4)).astype(np.float32)
        (mha(x, match_scores=match) ** 2).sum().backward()
        assert mha.match_gain.grad is not None


class TestRNN:
    @pytest.mark.parametrize("cell", ["gru", "lstm"])
    def test_birnn_shape(self, rng, cell):
        net = BiRNN(6, 4, rng, cell=cell)
        out = net(Tensor(rng.normal(size=(2, 5, 6))))
        assert out.shape == (2, 5, 8)

    def test_birnn_invalid_cell(self, rng):
        with pytest.raises(ValueError):
            BiRNN(4, 4, rng, cell="vanilla")

    def test_gru_cell_step(self, rng):
        cell = GRUCell(3, 4, rng)
        h = cell(Tensor(rng.normal(size=(2, 3))), cell.initial_state(2))
        assert h.shape == (2, 4)

    def test_lstm_cell_step(self, rng):
        cell = LSTMCell(3, 4, rng)
        h, c = cell(Tensor(rng.normal(size=(2, 3))), cell.initial_state(2))
        assert h.shape == (2, 4)
        assert c.shape == (2, 4)

    def test_lstm_forget_bias_initialized_open(self, rng):
        cell = LSTMCell(3, 4, rng)
        assert np.all(cell.x2h.bias.data[4:8] == 1.0)

    def test_birnn_gradients(self, rng):
        net = BiRNN(3, 2, rng, cell="gru")
        x = Tensor(rng.normal(size=(1, 3, 3)), requires_grad=True)
        (net(x) ** 2).sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in net.parameters())


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, 1, 2, 1])
        loss = cross_entropy(Tensor(logits), targets)
        shifted = logits - logits.max(axis=1, keepdims=True)
        probs = np.exp(shifted) / np.exp(shifted).sum(axis=1, keepdims=True)
        manual = -np.log(probs[np.arange(4), targets]).mean()
        assert abs(float(loss.data) - manual) < 1e-6

    def test_cross_entropy_ignore_index(self, rng):
        logits = rng.normal(size=(4, 3))
        targets = np.array([0, -100, 2, -100])
        loss = cross_entropy(Tensor(logits), targets, ignore_index=-100)
        kept = cross_entropy(Tensor(logits[[0, 2]]), np.array([0, 2]))
        assert abs(float(loss.data) - float(kept.data)) < 1e-6

    def test_cross_entropy_all_ignored_is_zero_grad(self, rng):
        logits = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        loss = cross_entropy(logits, np.array([-100, -100]),
                             ignore_index=-100)
        loss.backward()
        assert float(loss.data) == 0.0

    def test_cross_entropy_class_weights(self, rng):
        logits = rng.normal(size=(4, 2))
        targets = np.array([0, 0, 0, 1])
        unweighted = cross_entropy(Tensor(logits), targets)
        weighted = cross_entropy(Tensor(logits), targets,
                                 class_weights=np.array([1.0, 3.0]))
        assert float(weighted.data) != float(unweighted.data)

    def test_class_weights_and_ignore_exclusive(self, rng):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(rng.normal(size=(2, 2))), np.array([0, 1]),
                          ignore_index=-100, class_weights=np.ones(2))

    def test_cross_entropy_flattens_3d(self, rng):
        logits = Tensor(rng.normal(size=(2, 3, 5)))
        targets = rng.integers(0, 5, size=(2, 3))
        assert cross_entropy(logits, targets).size == 1

    def test_bce_with_logits(self, rng):
        logits = Tensor(rng.normal(size=(6,)))
        loss = binary_cross_entropy_with_logits(
            logits, (rng.random(6) > 0.5).astype(float))
        assert float(loss.data) > 0.0

    def test_distillation_loss_minimized_at_teacher(self, rng):
        teacher = rng.normal(size=(5, 7))
        matched = distillation_loss(Tensor(teacher.copy()), teacher)
        off = distillation_loss(Tensor(rng.normal(size=(5, 7))), teacher)
        assert float(matched.data) < float(off.data)

    def test_cosine_loss_zero_for_same_direction(self, rng):
        h = rng.normal(size=(2, 3, 4))
        loss = cosine_embedding_loss(Tensor(h), 2.0 * h)
        assert float(loss.data) < 1e-5

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]))
        assert abs(float(mse_loss(pred, np.array([0.0, 0.0])).data)
                   - 2.5) < 1e-9

    def test_cross_entropy_grad(self, rng):
        logits = rng.normal(size=(3, 4))
        targets = np.array([1, 0, 3])
        t = Tensor(logits, requires_grad=True)
        cross_entropy(t, targets).backward()
        def f():
            return float(cross_entropy(Tensor(logits), targets).data)
        num = numerical_gradient(f, logits)
        assert np.abs(num - t.grad).max() < 1e-6


class TestOptim:
    def test_sgd_reduces_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(50):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert abs(float(p.data[0])) < 0.1

    def test_sgd_momentum_faster_than_plain(self):
        def final(momentum):
            p = Parameter(np.array([5.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(60):
                opt.zero_grad()
                (p * p).sum().backward()
                opt.step()
            return abs(float(p.data[0]))
        assert final(0.9) < final(0.0)

    def test_adam_reduces_quadratic(self):
        p = Parameter(np.array([3.0, -4.0]))
        opt = Adam([p], lr=0.2)
        for _ in range(100):
            opt.zero_grad()
            (p * p).sum().backward()
            opt.step()
        assert np.abs(p.data).max() < 0.2

    def test_adam_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01, weight_decay=0.5)
        for _ in range(20):
            opt.zero_grad()
            (p * 0.0).sum().backward()
            opt.step()
        assert abs(float(p.data[0])) < 1.0

    def test_clip_grad_norm(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([10.0])
        total = clip_grad_norm([p], max_norm=1.0)
        assert abs(total - 10.0) < 1e-9
        assert abs(np.linalg.norm(p.grad) - 1.0) < 1e-6

    def test_linear_schedule_warmup_and_decay(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=1.0)
        sched = LinearSchedule(opt, base_lr=1.0, total_steps=10,
                               warmup_steps=2)
        lrs = [opt.lr]
        for _ in range(10):
            sched.step()
            lrs.append(opt.lr)
        assert lrs[0] < lrs[1]           # warming up
        assert lrs[-1] <= lrs[3]         # decaying
        assert lrs[-1] == 0.0

    def test_linear_schedule_invalid_steps(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            LinearSchedule(Adam([p]), 1.0, total_steps=0)

    def test_constant_schedule(self):
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.5)
        sched = ConstantSchedule(opt, 0.3)
        sched.step()
        assert opt.lr == 0.3


class TestCheckpointIO:
    def test_checkpoint_roundtrip(self, rng, tmp_path):
        lin = Linear(3, 2, rng)
        path = tmp_path / "ckpt.npz"
        save_checkpoint(path, lin.state_dict(), metadata={"kind": "test"})
        state, meta = load_checkpoint(path)
        assert meta == {"kind": "test"}
        assert np.allclose(state["weight"], lin.weight.data)

    def test_checkpoint_without_metadata(self, rng, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"a": np.ones(3)})
        state, meta = load_checkpoint(path)
        assert meta is None
        assert np.allclose(state["a"], 1.0)
