"""Fault tolerance (repro.resilience): state-dict round-trips, checkpoint
hardening, retention, chaos-injected kill/resume bit-identity, divergence
rollback, graceful-degradation matching, and the RA109 lint rule."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import lint_source
from repro.data import load_benchmark, split_dataset
from repro.matching import (EntityMatcher, FineTuneConfig, fine_tune,
                            uniform_cls_index)
from repro.nn import (SGD, Adam, CheckpointError, Linear, LinearSchedule,
                      Parameter, apply_state_dict, load_checkpoint,
                      save_checkpoint)
from repro.obs import MemorySink, TelemetryCallback, TelemetryRun
from repro.resilience import (ChaosConfig, ChaosMonkey, CheckpointManager,
                              CrashInjected, DivergenceGuard, GuardConfig,
                              ResilienceConfig, TrainingDiverged,
                              corrupt_checkpoint, fallback_probability,
                              pack_state, snapshot_prefixes, unpack_state)
from repro.utils import child_rng, get_rng_state, set_rng_state

pytestmark = pytest.mark.resilience


def _params(rng, shapes=((3, 4), (4,))):
    return [Parameter(rng.standard_normal(s)) for s in shapes]


def _fake_step(params, rng):
    for p in params:
        p.grad = rng.standard_normal(p.data.shape)


# -- state-dict round-trips ---------------------------------------------------


class TestOptimizerState:
    @pytest.mark.parametrize("factory", [
        lambda ps: SGD(ps, lr=0.1, momentum=0.9),
        lambda ps: Adam(ps, lr=1e-3),
    ])
    def test_roundtrip_resumes_identically(self, factory):
        rng = np.random.default_rng(0)
        params_a = _params(rng)
        params_b = [Parameter(p.data.copy()) for p in params_a]
        opt_a, opt_b = factory(params_a), factory(params_b)
        grad_rng = np.random.default_rng(1)
        for _ in range(4):
            _fake_step(params_a, grad_rng)
            opt_a.step()
        state = opt_a.state_dict()
        opt_b.load_state_dict(state)
        for pa, pb in zip(params_a, params_b):
            pb.data[...] = pa.data
        replay = np.random.default_rng(2)
        _fake_step(params_a, replay)
        opt_a.step()
        replay = np.random.default_rng(2)
        _fake_step(params_b, replay)
        opt_b.step()
        for pa, pb in zip(params_a, params_b):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_unexpected_key_rejected(self):
        opt = SGD(_params(np.random.default_rng(0)), lr=0.1)
        with pytest.raises((KeyError, ValueError)):
            opt.load_state_dict({"bogus": np.zeros(1)})

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        opt = Adam(_params(rng), lr=1e-3)
        state = opt.state_dict()
        state["m.0"] = np.zeros((7, 7))
        fresh = Adam(_params(rng), lr=1e-3)
        with pytest.raises(ValueError):
            fresh.load_state_dict(state)


class TestScheduleState:
    def test_linear_schedule_roundtrip(self):
        rng = np.random.default_rng(0)
        opt_a = Adam(_params(rng), lr=1e-3)
        sched_a = LinearSchedule(opt_a, 1e-3, total_steps=50,
                                 warmup_steps=5)
        for _ in range(9):
            sched_a.step()
        opt_b = Adam(_params(rng), lr=1e-3)
        sched_b = LinearSchedule(opt_b, 1e-3, total_steps=50,
                                 warmup_steps=5)
        sched_b.load_state_dict(sched_a.state_dict())
        assert opt_b.lr == opt_a.lr
        sched_a.step()
        sched_b.step()
        assert opt_b.lr == opt_a.lr


class TestRngState:
    def test_roundtrip_resumes_stream(self):
        rng = child_rng(0, "test-stream")
        rng.standard_normal(5)
        state = get_rng_state(rng)
        expected = rng.standard_normal(8)
        fresh = child_rng(0, "test-stream")
        set_rng_state(fresh, state)
        np.testing.assert_array_equal(fresh.standard_normal(8), expected)

    def test_bit_generator_mismatch_rejected(self):
        rng = np.random.default_rng(0)
        state = get_rng_state(rng)
        state["bit_generator"] = "NotARealGenerator"
        with pytest.raises(ValueError):
            set_rng_state(np.random.default_rng(1), state)


# -- checkpoint hardening -----------------------------------------------------


class TestCheckpointHardening:
    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError) as excinfo:
            load_checkpoint(path)
        assert "bad.npz" in str(excinfo.value)

    def test_truncated_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "t.npz"
        save_checkpoint(path, {"w": np.arange(1000.0)})
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_byte_flip_fails_checksum(self, tmp_path):
        path = tmp_path / "c.npz"
        save_checkpoint(path, {"w": np.arange(4096.0),
                               "b": np.zeros(8)})
        corrupt_checkpoint(path, seed=3)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_apply_state_dict_names_offending_keys(self):
        rng = np.random.default_rng(0)
        module = Linear(4, 2, rng)
        good = module.state_dict()
        missing = {k: v for k, v in good.items() if k != "weight"}
        with pytest.raises(CheckpointError) as excinfo:
            apply_state_dict(module, missing, source="unit-test")
        assert "weight" in str(excinfo.value)
        assert "unit-test" in str(excinfo.value)
        wrong_shape = dict(good)
        wrong_shape["weight"] = np.zeros((9, 9))
        with pytest.raises(CheckpointError) as excinfo:
            apply_state_dict(module, wrong_shape, source="unit-test")
        assert "weight" in str(excinfo.value)

    def test_pack_unpack_roundtrip(self):
        arrays = {}
        pack_state(arrays, "model", {"w": np.ones(3)})
        pack_state(arrays, "optim", {"m.0": np.zeros(3)})
        assert snapshot_prefixes(arrays) == ["model", "optim"]
        np.testing.assert_array_equal(
            unpack_state(arrays, "model")["w"], np.ones(3))


class TestCheckpointManager:
    def test_retention_keeps_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep_last=3)
        for step in range(6):
            manager.save(step, {"w": np.full(2, float(step))}, {"k": step})
        steps = [int(p.stem.split("-")[1]) for p in manager.snapshots()]
        assert steps == [3, 4, 5]

    def test_best_tracks_metric_improvements(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for step, metric in [(1, 0.2), (2, 0.6), (3, 0.4)]:
            manager.save(step, {"w": np.full(1, float(step))},
                         {}, best_metric=metric)
        state, meta = manager.load(manager.best_path())
        assert meta["step"] == 2
        assert meta["best_metric"] == pytest.approx(0.6)

    def test_load_latest_skips_corrupt_snapshot(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"w": np.full(512, 1.0)}, {"step": 1})
        manager.save(2, {"w": np.full(512, 2.0)}, {"step": 2})
        corrupt_checkpoint(manager.latest(), seed=0)
        state, meta, path = manager.load_latest()
        assert meta["step"] == 1
        assert manager.last_skipped
        np.testing.assert_array_equal(state["w"], np.full(512, 1.0))

    def test_all_corrupt_raises_with_every_failure(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(1, {"w": np.full(512, 1.0)}, {})
        manager.save(2, {"w": np.full(512, 2.0)}, {})
        for snap in manager.snapshots():
            corrupt_checkpoint(snap, seed=1)
        with pytest.raises(CheckpointError) as excinfo:
            manager.load_latest()
        message = str(excinfo.value)
        assert "step-00000001" in message and "step-00000002" in message


# -- divergence guard and chaos -----------------------------------------------


class TestDivergenceGuard:
    def test_non_finite_detection(self):
        guard = DivergenceGuard()
        assert guard.check(float("nan"), 1.0) == "non_finite_loss"
        assert guard.check(1.0, float("inf")) == "non_finite_gradient"
        assert guard.check(1.0, 1.0) is None

    def test_spike_needs_history(self):
        guard = DivergenceGuard(GuardConfig(spike_factor=10.0,
                                            min_history=4))
        assert guard.check(500.0, 1.0) is None  # no baseline yet
        for _ in range(4):
            assert guard.check(1.0, 1.0) is None
        assert guard.check(50.0, 1.0) == "loss_spike"

    def test_rollback_budget_exhaustion(self):
        guard = DivergenceGuard(GuardConfig(max_rollbacks=2))
        guard.record_rollback(1, "non_finite_loss", 0.1)
        guard.record_rollback(2, "non_finite_loss", 0.05)
        with pytest.raises(TrainingDiverged) as excinfo:
            guard.record_rollback(3, "non_finite_loss", 0.025)
        assert len(excinfo.value.attempts) == 3


class TestChaosMonkey:
    def test_nan_injection_fires_once_per_step(self):
        rng = np.random.default_rng(0)
        params = _params(rng)
        for p in params:
            p.grad = np.zeros(p.data.shape)
        monkey = ChaosMonkey(ChaosConfig(nan_grad_steps=[3], seed=0))
        assert not monkey.poison_gradients(2, params)
        assert monkey.poison_gradients(3, params)
        assert sum(np.isnan(p.grad).sum() for p in params) == 1
        for p in params:
            p.grad = np.zeros(p.data.shape)
        assert not monkey.poison_gradients(3, params)  # fired already

    def test_crash_fires_once_per_step(self):
        monkey = ChaosMonkey(crash_steps=[5])
        monkey.maybe_crash(4)
        with pytest.raises(CrashInjected) as excinfo:
            monkey.maybe_crash(5)
        assert excinfo.value.step == 5
        monkey.maybe_crash(5)  # second pass over the step is clean


# -- CLS-uniformity validation ------------------------------------------------


class TestUniformClsIndex:
    def test_uniform_batch(self):
        assert uniform_cls_index(np.array([0, 0, 0])) == 0
        assert uniform_cls_index(np.array([31, 31])) == 31

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            uniform_cls_index(np.array([], dtype=int))

    def test_mixed_positions_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            uniform_cls_index(np.array([0, 31, 0]))
        assert "CLS" in str(excinfo.value)


# -- fine-tune integration: kill/resume bit-identity --------------------------


@pytest.fixture(scope="module")
def ft_env(tiny_bert):
    data = load_benchmark("dblp-acm", seed=7, scale=0.03)
    splits = split_dataset(data, child_rng(7, "split", "dblp-acm"))
    config = FineTuneConfig(epochs=2, batch_size=8, max_length_cap=32)
    return tiny_bert, splits, config


@pytest.fixture(scope="module")
def reference_run(ft_env):
    pretrained, splits, config = ft_env
    return fine_tune(pretrained, splits.train, splits.test,
                     config=config, seed=3)


def _states_equal(a, b) -> bool:
    sa, sb = a.state_dict(), b.state_dict()
    return (sorted(sa) == sorted(sb)
            and all(np.array_equal(sa[k], sb[k]) for k in sa))


class TestFineTuneResilience:
    def test_checkpointing_does_not_perturb_training(
            self, ft_env, reference_run, tmp_path):
        pretrained, splits, config = ft_env
        result = fine_tune(
            pretrained, splits.train, splits.test, config=config, seed=3,
            resilience=ResilienceConfig(checkpoint_dir=tmp_path,
                                        checkpoint_every=3))
        assert _states_equal(result.classifier, reference_run.classifier)
        assert result.f1_curve() == reference_run.f1_curve()

    def test_kill_and_resume_is_bit_identical(
            self, ft_env, reference_run, tmp_path):
        pretrained, splits, config = ft_env
        resilience = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_every=3,
            chaos=ChaosMonkey(crash_steps=[7], seed=1))
        with pytest.raises(CrashInjected):
            fine_tune(pretrained, splits.train, splits.test,
                      config=config, seed=3, resilience=resilience)
        resumed = fine_tune(
            pretrained, splits.train, splits.test, config=config, seed=3,
            resilience=ResilienceConfig(checkpoint_dir=tmp_path,
                                        checkpoint_every=3, resume=True))
        assert _states_equal(resumed.classifier, reference_run.classifier)
        assert resumed.f1_curve() == reference_run.f1_curve()
        assert len(resumed.history) == len(reference_run.history)

    def test_nan_gradient_rolls_back_and_recovers(self, ft_env, tmp_path):
        pretrained, splits, config = ft_env
        sink = MemorySink()
        run = TelemetryRun(sink, run_id="chaos")
        result = fine_tune(
            pretrained, splits.train, splits.test, config=config, seed=3,
            resilience=ResilienceConfig(
                checkpoint_dir=tmp_path, checkpoint_every=3,
                chaos=ChaosMonkey(nan_grad_steps=[5], seed=2)),
            callbacks=TelemetryCallback(run))
        recoveries = [e["payload"] for e in sink.events
                      if e["kind"] == "recovery"]
        assert [(r["reason"], r["action"]) for r in recoveries] \
            == [("non_finite_gradient", "rollback")]
        checkpoints = [e for e in sink.events if e["kind"] == "checkpoint"]
        assert checkpoints
        # NaNs never reached the weights: training finished finite.
        assert all(np.isfinite(v).all()
                   for v in result.classifier.state_dict().values())

    def test_divergence_without_checkpoints_raises(self, ft_env):
        pretrained, splits, config = ft_env
        with pytest.raises(TrainingDiverged):
            fine_tune(pretrained, splits.train, splits.test,
                      config=config, seed=3,
                      resilience=ResilienceConfig(
                          chaos=ChaosMonkey(nan_grad_steps=[2], seed=0)))

    def test_corrupt_snapshot_falls_back_to_earlier_one(
            self, ft_env, reference_run, tmp_path):
        pretrained, splits, config = ft_env
        with pytest.raises(CrashInjected):
            fine_tune(pretrained, splits.train, splits.test,
                      config=config, seed=3,
                      resilience=ResilienceConfig(
                          checkpoint_dir=tmp_path, checkpoint_every=3,
                          chaos=ChaosMonkey(crash_steps=[8], seed=1)))
        corrupt_checkpoint(CheckpointManager(tmp_path).latest(), seed=0)
        sink = MemorySink()
        resumed = fine_tune(
            pretrained, splits.train, splits.test, config=config, seed=3,
            resilience=ResilienceConfig(checkpoint_dir=tmp_path,
                                        checkpoint_every=3, resume=True),
            callbacks=TelemetryCallback(TelemetryRun(sink, run_id="r")))
        reasons = [e["payload"]["reason"] for e in sink.events
                   if e["kind"] == "recovery"]
        assert "corrupt_checkpoint" in reasons
        assert "interrupted_run" in reasons
        assert _states_equal(resumed.classifier, reference_run.classifier)

    def test_incompatible_snapshot_rejected(self, ft_env, tmp_path):
        pretrained, splits, config = ft_env
        fine_tune(pretrained, splits.train, splits.test, config=config,
                  seed=3,
                  resilience=ResilienceConfig(checkpoint_dir=tmp_path))
        with pytest.raises(CheckpointError) as excinfo:
            fine_tune(pretrained, splits.train, splits.test,
                      config=config, seed=99,
                      resilience=ResilienceConfig(checkpoint_dir=tmp_path,
                                                  resume=True))
        assert "seed" in str(excinfo.value)

    def test_tail_batch_trains_every_example(self, ft_env):
        pretrained, splits, config = ft_env
        sink = MemorySink()
        single = FineTuneConfig(epochs=1, batch_size=config.batch_size,
                                max_length_cap=config.max_length_cap)
        fine_tune(pretrained, splits.train, splits.test, config=single,
                  seed=3,
                  callbacks=TelemetryCallback(TelemetryRun(sink, run_id="t")))
        steps = [e for e in sink.events if e["kind"] == "step"]
        n = len(splits.train)
        assert len(steps) == -(-n // single.batch_size)  # ceil, not floor
        trained = sum(1 for _ in steps)
        assert trained * single.batch_size >= n


# -- graceful degradation -----------------------------------------------------


class TestMatchManyDegradation:
    @pytest.fixture(scope="class")
    def fitted(self, ft_env):
        pretrained, splits, _ = ft_env
        matcher = EntityMatcher("bert", pretrained=pretrained, seed=3,
                                finetune_config=FineTuneConfig(
                                    epochs=1, batch_size=8,
                                    max_length_cap=32))
        matcher.fit(splits.train, splits.test)
        return matcher

    def test_fallback_probability_bounds(self):
        assert fallback_probability("", "") == 0.0
        assert fallback_probability("acm digital library",
                                    "acm digital library") \
            == pytest.approx(1.0)
        score = fallback_probability("deep learning db",
                                     "deep learning database")
        assert 0.0 < score < 1.0

    def test_per_pair_failure_degrades_not_aborts(self, fitted):
        boom_title = "trigger transformer failure"
        original = fitted.match_probability

        def flaky(entity_a, entity_b):
            if entity_a.get("title") == boom_title:
                raise RuntimeError("injected transformer failure")
            return original(entity_a, entity_b)

        fitted.match_probability = flaky
        sink = MemorySink()
        try:
            outcomes = fitted.match_many(
                [({"title": "neural entity matching"},
                  {"title": "neural entity matching"}),
                 ({"title": boom_title}, {"title": boom_title})],
                callbacks=TelemetryCallback(TelemetryRun(sink, run_id="m")))
        finally:
            fitted.match_probability = original
        assert len(outcomes) == 2
        assert not outcomes[0].degraded
        assert outcomes[1].degraded
        assert outcomes[1].error and "injected" in outcomes[1].error
        # Identical texts score high under the similarity fallback.
        assert outcomes[1].probability > 0.9 and outcomes[1].matched
        reasons = [e["payload"]["reason"] for e in sink.events
                   if e["kind"] == "recovery"]
        assert reasons == ["pair_failure"]

    def test_no_fallback_returns_nonmatch(self, fitted):
        original = fitted.match_probability
        fitted.match_probability = lambda a, b: (_ for _ in ()).throw(
            RuntimeError("down"))
        try:
            outcomes = fitted.match_many([({"title": "a"}, {"title": "a"})],
                                         fallback=False)
        finally:
            fitted.match_probability = original
        assert outcomes[0].degraded and not outcomes[0].matched
        assert outcomes[0].probability == 0.0


# -- model-zoo regeneration ---------------------------------------------------


class TestZooRegeneration:
    def test_corrupt_cached_weights_regenerate(self, tiny_settings,
                                               tmp_path):
        from repro.pretraining import get_pretrained
        first = get_pretrained("bert", seed=1, settings=tiny_settings,
                               zoo_dir=tmp_path)
        assert not first.from_cache
        weights = next(p for p in tmp_path.glob("bert-*.npz")
                       if "head" not in p.name)
        weights.write_bytes(b"garbage" * 100)
        again = get_pretrained("bert", seed=1, settings=tiny_settings,
                               zoo_dir=tmp_path)
        assert not again.from_cache  # regenerated, not crashed
        cached = get_pretrained("bert", seed=1, settings=tiny_settings,
                                zoo_dir=tmp_path)
        assert cached.from_cache

    def test_corrupt_tokenizer_cache_retrains(self, tiny_settings,
                                              tmp_path):
        from repro.pretraining import get_pretrained
        get_pretrained("bert", seed=2, settings=tiny_settings,
                       zoo_dir=tmp_path)
        tokenizer_path = next(tmp_path.glob("bert-*.tokenizer.json"))
        tokenizer_path.write_text("{truncated json")
        again = get_pretrained("bert", seed=2, settings=tiny_settings,
                               zoo_dir=tmp_path)
        assert len(again.tokenizer.vocab) > 0


# -- pretrain resume ----------------------------------------------------------


class TestPretrainResilience:
    def test_kill_and_resume_is_bit_identical(self, tiny_bert, tmp_path):
        from repro.pretraining import PretrainRecipe, pretrain
        recipe = PretrainRecipe(steps=8, batch_size=4, seq_len=24,
                                num_examples=60, num_documents=30)
        config = tiny_bert.config
        tokenizer = tiny_bert.tokenizer
        plain = pretrain(config, tokenizer, recipe,
                         child_rng(5, "pretrain-test"))
        resilience = ResilienceConfig(
            checkpoint_dir=tmp_path, checkpoint_every=2,
            chaos=ChaosMonkey(crash_steps=[5], seed=1))
        with pytest.raises(CrashInjected):
            pretrain(config, tokenizer, recipe,
                     child_rng(5, "pretrain-test"), resilience=resilience)
        resumed = pretrain(
            config, tokenizer, recipe, child_rng(5, "pretrain-test"),
            resilience=ResilienceConfig(checkpoint_dir=tmp_path,
                                        checkpoint_every=2, resume=True))
        assert resumed.loss_history == plain.loss_history
        assert _states_equal(resumed.backbone, plain.backbone)


# -- RA109 lint rule ----------------------------------------------------------


class TestNonAtomicWriteRule:
    def _ra109(self, source):
        return [v for v in lint_source(source) if v.rule == "RA109"]

    def test_in_place_open_flagged(self):
        found = self._ra109(
            "def save_report(path, text):\n"
            "    with open(path, 'w') as fh:\n"
            "        fh.write(text)\n")
        assert len(found) == 1
        assert "save_report" in found[0].message

    def test_write_text_flagged(self):
        found = self._ra109(
            "def dump_cache(path, payload):\n"
            "    path.write_text(payload)\n")
        assert len(found) == 1

    def test_tmp_plus_os_replace_clean(self):
        assert not self._ra109(
            "import os\n"
            "def save_report(path, text):\n"
            "    tmp = str(path) + '.tmp'\n"
            "    with open(tmp, 'w') as fh:\n"
            "        fh.write(text)\n"
            "    os.replace(tmp, path)\n")

    def test_atomic_helper_delegation_clean(self):
        assert not self._ra109(
            "from repro.utils import atomic_write_text\n"
            "def save_report(path, text):\n"
            "    atomic_write_text(path, text)\n")

    def test_str_replace_is_not_a_rename(self):
        found = self._ra109(
            "def save_report(path, text):\n"
            "    name = path.replace('.txt', '.bak')\n"
            "    with open(name, 'w') as fh:\n"
            "        fh.write(text)\n")
        # two-arg .replace is str.replace — the write is still in place
        assert len(found) == 1

    def test_reader_functions_ignored(self):
        assert not self._ra109(
            "def load_report(path):\n"
            "    return open(path).read()\n")

    def test_non_persistence_names_ignored(self):
        assert not self._ra109(
            "def __init__(self, path):\n"
            "    self._fh = open(path, 'w')\n")


# -- CLI ----------------------------------------------------------------------


class TestCli:
    def test_match_accepts_checkpoint_flags(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["match", "bert", "dblp-acm", "--checkpoint-dir", "/tmp/ck",
             "--checkpoint-every", "10", "--resume"])
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.checkpoint_every == 10
        assert args.resume

    def test_resume_parses_directory(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(["resume", "/tmp/ck"])
        assert args.command == "resume"
        assert args.checkpoint_dir == "/tmp/ck"

    def test_resume_empty_dir_errors(self, tmp_path, capsys):
        from repro.cli import main
        assert main(["resume", str(tmp_path)]) == 1
        assert "no snapshots" in capsys.readouterr().err

    def test_resume_rejects_foreign_snapshot(self, tmp_path, capsys):
        from repro.cli import main
        CheckpointManager(tmp_path).save(1, {"w": np.zeros(4)},
                                         {"kind": "other"})
        assert main(["resume", str(tmp_path)]) == 1
        assert "run context" in capsys.readouterr().err
