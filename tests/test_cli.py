"""CLI: argument parsing and the filesystem-facing commands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_datasets_defaults(self):
        args = build_parser().parse_args(["datasets"])
        assert args.command == "datasets"
        assert args.scale == 1.0

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "abt-buy", "out.csv", "--scale", "0.1",
             "--variant", "clean"])
        assert args.name == "abt-buy"
        assert args.variant == "clean"

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nope", "out.csv"])

    def test_match_args(self):
        args = build_parser().parse_args(
            ["match", "roberta", "dblp-acm", "--epochs", "2"])
        assert args.arch == "roberta"
        assert args.epochs == 2
        assert args.cascade is False

    def test_match_cascade_flag(self):
        args = build_parser().parse_args(
            ["match", "roberta", "dblp-acm", "--cascade"])
        assert args.cascade is True

    def test_calibrate_args(self):
        args = build_parser().parse_args(
            ["calibrate", "distilbert", "dblp-acm", "--pairs", "32",
             "--output", "w.npz"])
        assert args.arch == "distilbert"
        assert args.pairs == 32
        assert args.output == "w.npz"
        assert args.smoke is False

    def test_calibrate_arch_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["calibrate", "gpt", "dblp-acm"])

    def test_bench_batch_size_defaults_by_suite(self):
        args = build_parser().parse_args(["bench", "perf"])
        assert args.batch_size is None  # resolved per-suite at runtime

    def test_bench_blocking_args(self):
        args = build_parser().parse_args(
            ["bench", "blocking", "--smoke", "--records", "5000"])
        assert args.suite == "blocking"
        assert args.smoke is True
        assert args.records == 5000

    def test_dedupe_args(self):
        args = build_parser().parse_args(
            ["dedupe", "--records", "500", "--blocker", "tfidf",
             "--scorer", "blend", "--threshold", "0.6",
             "--output", "out.json"])
        assert args.records == 500
        assert args.blocker == "tfidf"
        assert args.scorer == "blend"
        assert args.threshold == 0.6

    def test_dedupe_blocker_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dedupe", "--blocker", "lsh2"])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "4"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_lint_args(self):
        args = build_parser().parse_args(
            ["lint", "src/", "--format", "json", "--rules", "RA101,RA108"])
        assert args.command == "lint"
        assert args.paths == ["src/"]
        assert args.format == "json"
        assert args.rules == "RA101,RA108"

    def test_lint_requires_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint"])

    def test_lint_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "src/", "--format", "xml"])

    def test_audit_defaults(self):
        args = build_parser().parse_args(["audit"])
        assert args.command == "audit"
        assert args.format == "text"
        assert args.tests == "tests"
        assert not args.strict

    def test_audit_strict_flag(self):
        args = build_parser().parse_args(["audit", "--strict",
                                          "--format", "json"])
        assert args.strict
        assert args.format == "json"


class TestCommands:
    def test_datasets_prints_table(self, capsys):
        assert main(["datasets", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "abt-buy" in out
        assert "dblp-scholar" in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        output = tmp_path / "data.csv"
        assert main(["generate", "itunes-amazon", str(output),
                     "--scale", "0.05"]) == 0
        assert output.exists()
        assert "matches" in capsys.readouterr().out
        from repro.data import load_dataset
        loaded = load_dataset(output)
        assert len(loaded) > 0

    def test_dedupe_writes_clusters(self, tmp_path, capsys):
        output = tmp_path / "clusters.json"
        assert main(["dedupe", "--records", "300",
                     "--output", str(output)]) == 0
        assert "entities" in capsys.readouterr().out
        from repro.dedupe import load_clusters
        payload = load_clusters(output)
        assert payload["num_records"] == 300

    def test_bench_blocking_smoke(self, tmp_path, capsys):
        output = tmp_path / "BENCH_blocking.json"
        assert main(["bench", "blocking", "--smoke",
                     "--output", str(output)]) == 0
        assert "report written" in capsys.readouterr().out
        import json
        report = json.loads(output.read_text())
        assert report["benchmark"] == "blocking"
        assert report["acceptance"]["enforced"] is False
