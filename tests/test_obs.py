"""Observability layer: registry math, spans, events, profiler, wiring."""

import time

import numpy as np
import pytest

from repro.cli import main
from repro.matching import FineTuneConfig, FineTuneResult, fine_tune
from repro.nn import Tensor
from repro.obs import (CallbackList, JsonlSink, LoggingCallback,
                       MemorySink, MetricsRegistry, NullSink,
                       TelemetryCallback, TelemetryRun, Tracer,
                       aggregate_spans, default_tracer, load_report,
                       profile, read_events, render_report, trace,
                       validate_event)

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc()
        registry.counter("steps").inc(2)
        registry.gauge("loss").set(0.25)
        snap = registry.snapshot()
        assert snap["steps"] == {"kind": "counter", "value": 3.0}
        assert snap["loss"]["value"] == 0.25

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_quantiles_exact(self):
        h = MetricsRegistry().histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.min == 1.0 and h.max == 100.0
        assert abs(h.mean - 50.5) < 1e-9
        assert abs(h.p50 - 50.5) < 1e-9
        assert abs(h.quantile(0.95) - 95.05) < 1e-9
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_histogram_decimation_bounded_and_close(self):
        h = MetricsRegistry().histogram("big", max_samples=128)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) <= 128
        assert h.max == 9999.0
        # Decimated quantiles stay within a few percent of truth.
        assert abs(h.p50 - 5000.0) < 500.0
        assert abs(h.p95 - 9500.0) < 500.0

    def test_empty_histogram_snapshot(self):
        h = MetricsRegistry().histogram("empty")
        assert h.snapshot() == {"kind": "histogram", "count": 0}


class TestTracing:
    def test_span_nesting_and_exclusive_time(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            time.sleep(0.005)
            with tracer.span("inner") as inner:
                time.sleep(0.01)
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.wall >= inner.wall
        assert abs(outer.exclusive - (outer.wall - inner.wall)) < 1e-9
        assert inner.exclusive == inner.wall

    def test_walk_paths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        walked = list(tracer.completed[0].walk())
        assert [(s.name, d, p) for s, d, p in walked] == \
            [("a", 0, "a"), ("b", 1, "a/b")]

    def test_mark_and_since(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        mark = tracer.mark()
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.since(mark)] == ["second"]

    def test_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("epoch"):
                with tracer.span("eval"):
                    pass
        stats = aggregate_spans(tracer.completed)
        assert stats["epoch"]["count"] == 3
        assert stats["eval"]["count"] == 3
        assert stats["epoch"]["total"] >= stats["epoch"]["exclusive"]

    def test_default_trace_helper(self):
        mark = default_tracer().mark()
        with trace("helper-span"):
            pass
        assert default_tracer().since(mark)[-1].name == "helper-span"

    def test_timer_alias_still_importable(self):
        from repro.obs import Timer as ObsTimer
        from repro.utils import Timer as UtilsTimer
        assert ObsTimer is UtilsTimer
        with UtilsTimer() as t:
            time.sleep(0.002)
        assert t.elapsed > 0


class TestEvents:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run = TelemetryRun(JsonlSink(path), run_id="test-run")
        run.emit("run_begin", command="test")
        with run.span("phase"):
            pass
        run.registry.counter("train.steps").inc(5)
        run.emit("step", step=0, loss=0.5, lr=1e-3)
        run.close()

        events = read_events(path)
        for event in events:
            validate_event(event)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "run_end"
        assert "span" in kinds and "metric" in kinds and "step" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["run_id"] == "test-run" for e in events)

    def test_close_is_idempotent(self, tmp_path):
        run = TelemetryRun(JsonlSink(tmp_path / "r.jsonl"), run_id="r")
        run.close()
        run.close()
        assert len(read_events(tmp_path / "r.jsonl")) == 1  # run_end only

    def test_validate_rejects_bad_events(self):
        good = {"run_id": "r", "ts": 1.0, "seq": 0, "kind": "step",
                "payload": {"step": 0, "loss": 0.1}}
        validate_event(good)
        with pytest.raises(ValueError):
            validate_event({**good, "kind": "nope"})
        with pytest.raises(ValueError):
            validate_event({**good, "payload": {"step": 0}})  # no loss
        with pytest.raises(ValueError):
            validate_event({k: v for k, v in good.items() if k != "ts"})
        with pytest.raises(ValueError):
            validate_event("not a dict")

    def test_emit_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            TelemetryRun(NullSink()).emit("bogus")

    def test_null_sink_drops_everything(self):
        run = TelemetryRun(NullSink(), run_id="quiet")
        run.emit("run_begin")
        run.close()  # no error, nothing persisted


class TestProfiler:
    def test_matmul_flops_exact(self):
        with profile() as prof:
            a = Tensor(np.ones((4, 5)), requires_grad=True)
            b = Tensor(np.ones((5, 3)))
            c = a @ b
        assert prof.ops["matmul"].calls == 1
        assert prof.ops["matmul"].flops == 2 * 4 * 5 * 3
        assert prof.ops["matmul"].bytes == c.data.nbytes

    def test_backward_estimate_is_twice_forward(self):
        with profile() as prof:
            a = Tensor(np.ones((4, 5)), requires_grad=True)
            loss = (a @ Tensor(np.ones((5, 3)))).sum()
            forward = prof.total_flops
            loss.backward()
        assert prof.ops["backward"].calls == 1
        assert prof.ops["backward"].flops == pytest.approx(2 * forward)

    def test_op_kinds_normalized(self):
        with profile() as prof:
            a = Tensor(np.ones(8), requires_grad=True)
            _ = (1.0 + a) * 2.0 - a
            _ = a.softmax()
        assert "add" in prof.ops and "mul" in prof.ops
        assert "softmax" in prof.ops
        assert not any(k.startswith("__") for k in prof.ops)

    def test_hooks_restored_after_exit(self):
        original_make = Tensor._make
        original_backward = Tensor.backward
        with profile():
            assert Tensor._make is not original_make
        assert Tensor._make is original_make
        assert Tensor.backward is original_backward

    def test_hooks_restored_on_error(self):
        original_make = Tensor._make
        with pytest.raises(RuntimeError, match="boom"):
            with profile():
                raise RuntimeError("boom")
        assert Tensor._make is original_make

    def test_nesting_rejected(self):
        with profile():
            with pytest.raises(RuntimeError, match="nested"):
                with profile():
                    pass

    def test_table_renders(self):
        with profile() as prof:
            _ = Tensor(np.ones((2, 2))) @ Tensor(np.ones((2, 2)))
        table = prof.table()
        assert "matmul" in table and "MFLOPs" in table


class TestCallbacks:
    def test_resolve_shims_legacy_log(self):
        lines = []
        cb = CallbackList.resolve(None, lines.append)
        assert len(cb) == 1 and bool(cb)
        assert isinstance(cb.callbacks[0], LoggingCallback)
        assert not CallbackList.resolve(None, None)

    def test_logging_callback_finetune_format(self):
        lines = []
        cb = LoggingCallback(lines.append)
        cb.on_eval({"phase": "finetune", "epoch": 0, "f1": 0.412,
                    "zero_shot": True})
        cb.on_epoch_end({"phase": "finetune", "epoch": 1,
                         "train_loss": 0.512, "f1": 0.871,
                         "seconds": 2.34})
        assert lines == ["epoch 0 (zero-shot) F1 41.2",
                         "epoch 1 loss 0.512 F1 87.1 (2.3s)"]

    def test_logging_callback_pretrain_format(self):
        lines = []
        cb = LoggingCallback(lines.append, every=2)
        cb.on_train_begin({"phase": "pretrain", "steps": 4})
        for step in range(4):
            cb.on_step({"phase": "pretrain", "step": step,
                        "loss": float(step)})
        assert lines == ["step 2/4 loss 0.500", "step 4/4 loss 2.500"]


def _tiny_splits(scale=0.04):
    from repro.data import load_benchmark, split_dataset
    from repro.utils import child_rng
    data = load_benchmark("dblp-acm", seed=7, scale=scale)
    return split_dataset(data, child_rng(7, "split", "dblp-acm"))


class TestFineTuneIntegration:
    def test_event_sequence(self, tiny_bert):
        splits = _tiny_splits()
        sink = MemorySink()
        run = TelemetryRun(sink, run_id="itest")
        config = FineTuneConfig(epochs=2, batch_size=8)
        result = fine_tune(tiny_bert, splits.train, splits.test,
                           config=config, seed=0,
                           callbacks=[TelemetryCallback(run)])
        run.close()

        events = sink.events
        for event in events:
            validate_event(event)
        kinds = [e["kind"] for e in events]
        # Expected shape: train_begin, zero-shot eval, then per epoch
        # N steps + eval + epoch_end, then train_end (+ spans/metrics
        # from close()).
        assert kinds[0] == "train_begin"
        begin = events[0]["payload"]
        assert begin["phase"] == "finetune"
        steps_per_epoch = begin["steps_per_epoch"]

        assert kinds[1] == "eval"
        assert events[1]["payload"]["epoch"] == 0
        assert events[1]["payload"]["zero_shot"] is True

        evals = [e["payload"] for e in events if e["kind"] == "eval"]
        assert [p["epoch"] for p in evals] == [0, 1, 2]
        epoch_ends = [e["payload"] for e in events
                      if e["kind"] == "epoch_end"]
        assert [p["epoch"] for p in epoch_ends] == [1, 2]
        steps = [e["payload"] for e in events if e["kind"] == "step"]
        assert len(steps) == 2 * steps_per_epoch
        assert all({"loss", "lr", "grad_norm",
                    "examples_per_sec"} <= p.keys() for p in steps)
        assert kinds.index("train_end") > kinds.index("epoch_end")
        # close() drained spans: epoch and eval spans must be present.
        span_names = {e["payload"]["name"] for e in events
                      if e["kind"] == "span"}
        assert {"epoch", "eval", "setup"} <= span_names
        # Registry metrics fed by TelemetryCallback arrived too.
        metric_names = {e["payload"]["name"] for e in events
                        if e["kind"] == "metric"}
        assert "train.steps" in metric_names
        # And the result still matches the events.
        assert result.final_f1 == pytest.approx(evals[-1]["f1"])

    def test_legacy_log_shim_unchanged_lines(self, tiny_bert):
        splits = _tiny_splits()
        lines = []
        fine_tune(tiny_bert, splits.train, splits.test,
                  config=FineTuneConfig(epochs=1, batch_size=8),
                  seed=0, log=lines.append)
        assert lines[0].startswith("epoch 0 (zero-shot) F1 ")
        assert lines[1].startswith("epoch 1 loss ")
        assert lines[1].endswith("s)")

    def test_report_renders_from_run(self, tiny_bert, tmp_path):
        splits = _tiny_splits()
        path = tmp_path / "ft.jsonl"
        run = TelemetryRun(JsonlSink(path), run_id="report-test")
        run.emit("run_begin", command="test")
        with profile() as prof:
            fine_tune(tiny_bert, splits.train, splits.test,
                      config=FineTuneConfig(epochs=1, batch_size=8),
                      seed=0, callbacks=[TelemetryCallback(run)])
        run.emit("profile", ops=prof.as_dict())
        run.close()
        report = load_report(path)
        assert "slowest spans" in report
        assert "op profile" in report and "matmul" in report
        assert "F1 by epoch" in report
        assert "throughput" in report


class TestFineTuneResultGuards:
    def test_empty_history_raises_value_error(self):
        result = FineTuneResult(classifier=None)
        with pytest.raises(ValueError, match="history is empty"):
            result.best_f1
        with pytest.raises(ValueError, match="history is empty"):
            result.final_f1
        assert result.f1_curve() == []


class TestPretrainEvents:
    def test_pretrain_emits_steps(self, tiny_settings):
        from repro.models import default_config
        from repro.pretraining import PretrainRecipe, pretrain
        from repro.pretraining.model_zoo import _train_tokenizer
        from repro.utils import child_rng
        tokenizer = _train_tokenizer("bert", tiny_settings, seed=0)
        config = default_config(
            "bert", vocab_size=len(tokenizer.vocab),
            d_model=tiny_settings.d_model,
            num_layers=tiny_settings.num_layers,
            num_heads=tiny_settings.num_heads,
            max_position=tiny_settings.max_position)
        recipe = PretrainRecipe(steps=4, batch_size=4, seq_len=24,
                                num_examples=40, num_documents=20,
                                use_nsp=True)
        sink = MemorySink()
        run = TelemetryRun(sink, run_id="pretrain-test")
        pretrain(config, tokenizer, recipe, child_rng(0, "pt"),
                 callbacks=[TelemetryCallback(run)])
        run.close()
        kinds = [e["kind"] for e in sink.events]
        assert kinds[0] == "train_begin"
        assert sink.events[0]["payload"]["phase"] == "pretrain"
        assert kinds.count("step") == 4
        assert "train_end" in kinds
        for event in sink.events:
            validate_event(event)


class TestTelemetrySmoke:
    """The CI smoke check: `repro match --telemetry` end to end."""

    def test_cli_match_telemetry_smoke(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        rc = main(["match", "bert", "itunes-amazon",
                   "--scale", "0.1", "--epochs", "1", "--smoke",
                   "--zoo-dir", str(tmp_path / "zoo"),
                   "--telemetry", str(jsonl)])
        assert rc == 0
        assert "telemetry written to" in capsys.readouterr().out
        events = read_events(jsonl)
        for event in events:
            validate_event(event)
        kinds = {e["kind"] for e in events}
        assert {"run_begin", "train_begin", "step", "eval", "epoch_end",
                "train_end", "span", "run_end"} <= kinds
        # And the CLI report subcommand renders it.
        assert main(["telemetry", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "slowest spans" in out

    def test_report_of_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["telemetry", str(path)]) == 0
        assert "no events" in capsys.readouterr().out


class TestBenchSidecar:
    def test_emit_writes_telemetry_sidecar(self, tmp_path, monkeypatch,
                                           capsys):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "bench_shared", "benchmarks/_shared.py")
        shared = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(shared)
        monkeypatch.setattr(shared, "OUT_DIR", tmp_path)
        with trace("bench-phase"):
            pass
        shared.emit("smoke", "hello")
        assert (tmp_path / "smoke.txt").read_text() == "hello\n"
        events = read_events(tmp_path / "smoke.telemetry.jsonl")
        for event in events:
            validate_event(event)
        assert events[0]["kind"] == "run_begin"
        names = {e["payload"].get("name") for e in events
                 if e["kind"] == "span"}
        assert "bench-phase" in names


# -- repro.obs v2: request tracing, exposition, SLOs, dashboard -----------

import io
import json
import urllib.error
import urllib.request

from repro.obs import (LATENCY_BUCKETS, SLO, Alert, BatchStages,
                       BurnWindow, CardinalityError, FAST_BURN,
                       Histogram, MetricsHTTPServer, RequestTracer,
                       SLOMonitor, SpanExporter, TraceSampler,
                       default_serve_slos, parse_prometheus,
                       read_events_tolerant, render_prometheus)
from repro.serve import VirtualClock


class TestTraceContextUnits:
    def test_sampler_stride_and_bounds(self):
        sampler = TraceSampler(0.25)
        assert [sampler.sampled(i) for i in range(5)] \
            == [True, False, False, False, True]
        assert all(TraceSampler(1.0).sampled(i) for i in range(10))
        assert not any(TraceSampler(0.0).sampled(i) for i in range(10))
        with pytest.raises(ValueError):
            TraceSampler(1.5)
        with pytest.raises(ValueError):
            TraceSampler(float("nan"))

    def test_lifecycle_builds_tree_on_bound_clock(self):
        clock = VirtualClock()
        tracer = RequestTracer(clock=clock)
        root = tracer.begin_request(request_id=7)
        child = tracer.child(root, "queue_wait")
        clock.advance(0.125)
        tracer.end(child, waited=0.125)
        tracer.attach(root, "forward", start=0.125, end=0.125, rows=1)
        tracer.finish(root, outcome="ok")

        assert child.duration == 0.125 == root.duration
        assert [s.name for s, _ in root.walk()] \
            == ["serve.request", "queue_wait", "forward"]
        assert all(s.parent_id == root.span_id
                   for s in root.children)
        payload = child.as_dict()
        assert payload["parent_span_id"] == root.span_id
        assert payload["seconds"] == 0.125
        assert tracer.snapshot() == [root]

    def test_bind_clock_does_not_override_explicit_clock(self):
        clock = VirtualClock()
        tracer = RequestTracer(clock=clock)
        tracer.bind_clock(VirtualClock())
        clock.advance(2.0)
        assert tracer.now() == 2.0

    def test_span_context_manager_closes_on_error(self):
        tracer = RequestTracer(clock=VirtualClock())
        with pytest.raises(RuntimeError):
            with tracer.span("serve.request"):
                raise RuntimeError("boom")
        (root,) = tracer.snapshot()
        assert root.end is not None

    def test_batch_stages_record_shared_clock(self):
        clock = VirtualClock()
        stages = BatchStages(clock.now)
        with stages.stage("tokenize", pairs=4):
            clock.advance(0.25)
        (record,) = stages.records
        assert (record.name, record.start, record.end) \
            == ("tokenize", 0.0, 0.25)
        assert record.attrs == {"pairs": 4}


class TestTolerantEventRead:
    def _write(self, path):
        sink = JsonlSink(path)
        run = TelemetryRun(sink, run_id="r")
        run.emit("run_begin", command="test")
        run.close()

    def test_truncated_tail_is_skipped_and_counted(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"run_id": "r", "ts": 1.0, "se')  # torn write
        events, skipped = read_events_tolerant(path)
        assert skipped == 1
        assert all(isinstance(e, dict) for e in events)
        with pytest.raises(json.JSONDecodeError):
            read_events(path)

    def test_non_dict_lines_are_skipped(self, tmp_path):
        path = tmp_path / "odd.jsonl"
        path.write_text('42\n"string"\n')
        assert read_events_tolerant(path) == ([], 2)

    def test_cli_report_warns_but_renders(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        self._write(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"broken')
        assert main(["telemetry", str(path)]) == 0
        out = capsys.readouterr().out
        assert "warning: skipped 1 corrupt/truncated line(s)" in out
        assert "telemetry report" in out


class TestCardinalityGuard:
    def test_label_explosion_raises(self):
        registry = MetricsRegistry(max_series_per_metric=3)
        for i in range(3):
            registry.counter("hits", labels={"route": str(i)}).inc()
        with pytest.raises(CardinalityError):
            registry.counter("hits", labels={"route": "boom"})
        # Existing series stay reachable after the guard trips.
        registry.counter("hits", labels={"route": "1"}).inc()
        assert registry.counter("hits",
                                labels={"route": "1"}).value == 2.0

    def test_same_labels_reuse_one_series(self):
        registry = MetricsRegistry(max_series_per_metric=2)
        first = registry.counter("c", labels={"a": "x", "b": "y"})
        second = registry.counter("c", labels={"b": "y", "a": "x"})
        assert first is second


class TestPrometheusExposition:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(7)
        registry.gauge("serve.queue.depth", labels={"svc": "m"}).set(3)
        latency = registry.histogram("serve.latency_seconds",
                                     buckets=LATENCY_BUCKETS)
        latency.observe(0.004, exemplar="trace-00000001")
        latency.observe(0.3)
        registry.histogram("serve.batch.wait").observe(0.5)
        return registry

    def test_render_covers_all_kinds(self):
        text = render_prometheus(self._registry())
        assert "# TYPE serve_requests counter" in text
        assert "serve_requests 7" in text
        assert 'serve_queue_depth{svc="m"} 3' in text
        assert "# TYPE serve_latency_seconds histogram" in text
        assert 'serve_latency_seconds_bucket{le="+Inf"} 2' in text
        assert "serve_latency_seconds_count 2" in text
        # Bucketless histograms render as summary quantiles.
        assert "# TYPE serve_batch_wait summary" in text
        assert 'serve_batch_wait{quantile="0.99"}' in text

    def test_exemplar_links_bucket_to_trace(self):
        text = render_prometheus(self._registry())
        line = next(l for l in text.splitlines()
                    if l.startswith('serve_latency_seconds_bucket'
                                    '{le="0.005"}'))
        assert '# {trace_id="trace-00000001"} 0.004' in line

    def test_parse_round_trips_render(self):
        series = parse_prometheus(render_prometheus(self._registry()))
        assert series["serve_requests"] == 7.0
        assert series['serve_queue_depth{svc="m"}'] == 3.0
        assert series['serve_latency_seconds_bucket{le="+Inf"}'] == 2.0
        assert series["serve_latency_seconds_sum"] \
            == pytest.approx(0.304)

    def test_http_endpoint_serves_metrics_and_health(self):
        registry = self._registry()
        with MetricsHTTPServer(registry,
                               health=lambda: {"queue_depth": 0}) as srv:
            with urllib.request.urlopen(f"{srv.url}/metrics") as resp:
                assert resp.status == 200
                body = resp.read().decode("utf-8")
            assert body == render_prometheus(registry)
            with urllib.request.urlopen(f"{srv.url}/healthz") as resp:
                health = json.loads(resp.read())
            assert health["status"] == "ok"
            assert health["queue_depth"] == 0
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(f"{srv.url}/nope")
            assert exc_info.value.code == 404

    def test_failing_health_probe_reports_failing(self):
        def probe():
            raise RuntimeError("backend gone")

        with MetricsHTTPServer(MetricsRegistry(), health=probe) as srv:
            with urllib.request.urlopen(f"{srv.url}/healthz") as resp:
                assert json.loads(resp.read())["status"] == "failing"


class TestSpanExporter:
    def _trace(self, tracer, clock):
        root = tracer.begin_request(request_id=1)
        span = tracer.child(root, "queue_wait")
        clock.advance(0.01)
        tracer.end(span)
        tracer.finish(root, outcome="ok")
        return root

    def test_export_emits_schema_valid_span_events(self):
        clock = VirtualClock()
        tracer = RequestTracer(clock=clock)
        self._trace(tracer, clock)
        sink = MemorySink()
        exporter = SpanExporter(sink)
        assert exporter.drain(tracer) == 1  # one trace...
        assert len(sink.events) == 2        # ...two spans
        for event in sink.events:
            validate_event(event)
            assert event["kind"] == "span"
        root_event, child_event = sink.events
        assert child_event["payload"]["parent_span_id"] \
            == root_event["payload"]["span_id"]
        assert child_event["payload"]["depth"] == 1

    def test_drain_deduplicates_by_trace_id(self):
        clock = VirtualClock()
        tracer = RequestTracer(clock=clock)
        self._trace(tracer, clock)
        exporter = SpanExporter(MemorySink())
        assert exporter.drain(tracer) == 1
        assert exporter.drain(tracer) == 0
        self._trace(tracer, clock)
        assert exporter.drain(tracer) == 1


class TestSLOBurnRate:
    """Multi-window multi-burn-rate alerting, deterministic on the
    virtual clock (ticks every 300 s, the fast window's short arm)."""

    @staticmethod
    def _monitor():
        clock = VirtualClock()
        registry = MetricsRegistry()
        registry.counter("serve.requests")
        registry.counter("serve.timeouts")
        registry.histogram("serve.latency_seconds",
                           buckets=LATENCY_BUCKETS)
        monitor = SLOMonitor(default_serve_slos(), registry=registry,
                             clock=clock)
        monitor.record()
        return clock, registry, monitor

    @staticmethod
    def _tick(clock, registry, monitor, requests=100, errors=0,
              latency=0.01):
        clock.advance(300.0)
        registry.counter("serve.requests").inc(requests)
        if errors:
            registry.counter("serve.timeouts").inc(errors)
        for _ in range(requests):
            registry.histogram("serve.latency_seconds",
                               buckets=LATENCY_BUCKETS).observe(latency)
        monitor.record()
        monitor.evaluate()

    def _alert(self, monitor, slo, window) -> Alert:
        return monitor.alerts[(slo, window)]

    def test_fast_burn_fires_and_clears_deterministically(self):
        clock, registry, monitor = self._monitor()
        for _ in range(12):  # one healthy hour
            self._tick(clock, registry, monitor)
        alert = self._alert(monitor, "serve-availability", "fast_burn")
        assert not alert.firing

        for _ in range(4):  # 20 min at 50% errors
            self._tick(clock, registry, monitor, errors=50)
        assert alert.firing
        assert alert.burn_short == pytest.approx(50.0)  # 0.5 / 0.01
        assert alert.transitions[-1] == ("fired", clock.now())

        fired_at = clock.now()
        self._tick(clock, registry, monitor)  # healthy again
        assert not alert.firing
        assert alert.transitions[-2:] == [("fired", fired_at),
                                          ("cleared", clock.now())]

    def test_short_burst_does_not_page(self):
        clock, registry, monitor = self._monitor()
        for _ in range(12):
            self._tick(clock, registry, monitor)
        # One bad tick: the short window burns hot, but over the full
        # hour the healthy history dilutes it below the 14.4 factor.
        self._tick(clock, registry, monitor, errors=50)
        alert = self._alert(monitor, "serve-availability", "fast_burn")
        assert alert.burn_short >= 14.4
        assert alert.burn_long < 14.4
        assert not alert.firing

    def test_slow_burn_catches_simmering_error_rate(self):
        clock, registry, monitor = self._monitor()
        fast = self._alert(monitor, "serve-availability", "fast_burn")
        slow = self._alert(monitor, "serve-availability", "slow_burn")
        # 10% errors: burn 10 — under the fast factor (14.4), over the
        # slow factor (6.0).
        for _ in range(24):  # two hours
            self._tick(clock, registry, monitor, errors=10)
        assert slow.firing and not fast.firing

    def test_latency_slo_uses_exact_bucket_counts(self):
        clock, registry, monitor = self._monitor()
        for _ in range(12):
            self._tick(clock, registry, monitor)
        alert = self._alert(monitor, "serve-latency", "fast_burn")
        assert not alert.firing
        # Budget is 0.05, so the hour-long arm needs ~72% bad to hit
        # the 14.4 factor: 10 of the window's 12 ticks all-slow.
        for _ in range(10):
            self._tick(clock, registry, monitor, latency=0.9)
        assert alert.firing
        assert alert.burn_short == pytest.approx(20.0)  # 1.0 / 0.05

    def test_budget_remaining_can_overdraw(self):
        clock, registry, monitor = self._monitor()
        self._tick(clock, registry, monitor)
        assert monitor.error_budget_remaining("serve-availability") \
            == pytest.approx(1.0)
        self._tick(clock, registry, monitor, errors=100)
        assert monitor.error_budget_remaining("serve-availability") < 0
        with pytest.raises(KeyError):
            monitor.error_budget_remaining("nope")

    def test_validation(self):
        with pytest.raises(ValueError):
            SLO("x", 1.5, lambda r: (0, 0))
        with pytest.raises(ValueError):
            BurnWindow("w", long_seconds=60.0, short_seconds=60.0,
                       factor=2.0)
        with pytest.raises(ValueError):
            BurnWindow("w", long_seconds=60.0, short_seconds=30.0,
                       factor=0.0)
        with pytest.raises(ValueError):
            SLOMonitor([], registry=MetricsRegistry())


class TestDashboard:
    def test_demo_state_is_deterministic(self):
        from repro.obs.top import demo_state
        first, second = demo_state(), demo_state()
        assert first["counters"] == second["counters"]
        assert first["latency"] == second["latency"]
        assert first["counters"]["completed"] == 120.0
        assert first["counters"]["degraded"] == 2.0
        assert [t["trace_id"] for t in first["slowest"]] \
            == [t["trace_id"] for t in second["slowest"]]

    def test_render_dashboard_sections(self):
        from repro.obs.top import demo_state, render_dashboard
        text = render_dashboard(demo_state())
        assert "repro obs top — source: demo (virtual)" in text
        assert "completed     120" in text
        assert "error budget:" in text
        assert "serve-availability" in text
        assert "slowest recent traces:" in text
        assert "queue_wait" in text

    def test_gather_url_matches_local_counters(self):
        from repro.obs.top import gather_local, gather_url
        registry = MetricsRegistry()
        registry.counter("serve.requests").inc(9)
        registry.counter("serve.completed").inc(8)
        registry.gauge("serve.queue.depth").set(1)
        hist = registry.histogram("serve.latency_seconds",
                                  buckets=LATENCY_BUCKETS)
        for value in (0.004, 0.02, 0.02, 0.3):
            hist.observe(value)
        with MetricsHTTPServer(registry) as srv:
            scraped = gather_url(srv.url)
        local = gather_local(registry)
        assert scraped["counters"] == local["counters"]
        assert scraped["queue_depth"] == 1.0
        assert scraped["latency"]["count"] == 4.0
        # Scraped quantiles are bucket-reconstructed: same bucket as
        # the in-process exact values.
        assert scraped["latency"]["p50"] <= 0.025
        assert scraped["latency"]["p99"] >= 0.25

    def test_run_top_snapshot_prints_once(self):
        from repro.obs.top import run_top
        frames = []

        def gather():
            return {"source": "t", "queue_depth": 0,
                    "counters": dict.fromkeys(
                        ("requests", "completed", "rejected",
                         "timeouts", "degraded"), 0),
                    "latency": {"count": 0, "p50": 0.0, "p95": 0.0,
                                "p99": 0.0},
                    "batch": {"count": 0, "mean": 0.0, "max": 0.0},
                    "slo": [], "slowest": []}

        stream = io.StringIO()
        assert run_top(gather, stream=stream, live=False) == 0
        assert stream.getvalue().count("repro obs top") == 1

    def test_run_top_live_iterations_clear_screen(self):
        from repro.obs.top import run_top
        stream = io.StringIO()
        naps = []
        state = {"source": "t", "queue_depth": 0,
                 "counters": dict.fromkeys(
                     ("requests", "completed", "rejected", "timeouts",
                      "degraded"), 0),
                 "latency": {"count": 0, "p50": 0.0, "p95": 0.0,
                             "p99": 0.0},
                 "batch": {"count": 0, "mean": 0.0, "max": 0.0},
                 "slo": [], "slowest": []}
        assert run_top(lambda: state, stream=stream, live=True,
                       iterations=3, interval=0.5,
                       sleep=naps.append) == 0
        assert stream.getvalue().count("\x1b[2J") == 3
        assert naps == [0.5, 0.5]

    def test_cli_obs_top_demo_snapshot(self, capsys):
        assert main(["obs", "top", "--demo", "--snapshot"]) == 0
        out = capsys.readouterr().out
        assert "repro obs top — source: demo (virtual)" in out

    def test_cli_obs_top_requires_a_source(self, capsys):
        assert main(["obs", "top"]) == 2
        assert "--url" in capsys.readouterr().err
