"""Observability layer: registry math, spans, events, profiler, wiring."""

import time

import numpy as np
import pytest

from repro.cli import main
from repro.matching import FineTuneConfig, FineTuneResult, fine_tune
from repro.nn import Tensor
from repro.obs import (CallbackList, JsonlSink, LoggingCallback,
                       MemorySink, MetricsRegistry, NullSink,
                       TelemetryCallback, TelemetryRun, Tracer,
                       aggregate_spans, default_tracer, load_report,
                       profile, read_events, render_report, trace,
                       validate_event)

pytestmark = pytest.mark.obs


class TestRegistry:
    def test_counter_and_gauge(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc()
        registry.counter("steps").inc(2)
        registry.gauge("loss").set(0.25)
        snap = registry.snapshot()
        assert snap["steps"] == {"kind": "counter", "value": 3.0}
        assert snap["loss"]["value"] == 0.25

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c").inc(-1)

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_histogram_quantiles_exact(self):
        h = MetricsRegistry().histogram("latency")
        for v in range(1, 101):
            h.observe(float(v))
        assert h.count == 100
        assert h.min == 1.0 and h.max == 100.0
        assert abs(h.mean - 50.5) < 1e-9
        assert abs(h.p50 - 50.5) < 1e-9
        assert abs(h.quantile(0.95) - 95.05) < 1e-9
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_histogram_decimation_bounded_and_close(self):
        h = MetricsRegistry().histogram("big", max_samples=128)
        for v in range(10_000):
            h.observe(float(v))
        assert h.count == 10_000
        assert len(h._samples) <= 128
        assert h.max == 9999.0
        # Decimated quantiles stay within a few percent of truth.
        assert abs(h.p50 - 5000.0) < 500.0
        assert abs(h.p95 - 9500.0) < 500.0

    def test_empty_histogram_snapshot(self):
        h = MetricsRegistry().histogram("empty")
        assert h.snapshot() == {"kind": "histogram", "count": 0}


class TestTracing:
    def test_span_nesting_and_exclusive_time(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            time.sleep(0.005)
            with tracer.span("inner") as inner:
                time.sleep(0.01)
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.wall >= inner.wall
        assert abs(outer.exclusive - (outer.wall - inner.wall)) < 1e-9
        assert inner.exclusive == inner.wall

    def test_walk_paths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        walked = list(tracer.completed[0].walk())
        assert [(s.name, d, p) for s, d, p in walked] == \
            [("a", 0, "a"), ("b", 1, "a/b")]

    def test_mark_and_since(self):
        tracer = Tracer()
        with tracer.span("first"):
            pass
        mark = tracer.mark()
        with tracer.span("second"):
            pass
        assert [s.name for s in tracer.since(mark)] == ["second"]

    def test_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("epoch"):
                with tracer.span("eval"):
                    pass
        stats = aggregate_spans(tracer.completed)
        assert stats["epoch"]["count"] == 3
        assert stats["eval"]["count"] == 3
        assert stats["epoch"]["total"] >= stats["epoch"]["exclusive"]

    def test_default_trace_helper(self):
        mark = default_tracer().mark()
        with trace("helper-span"):
            pass
        assert default_tracer().since(mark)[-1].name == "helper-span"

    def test_timer_alias_still_importable(self):
        from repro.obs import Timer as ObsTimer
        from repro.utils import Timer as UtilsTimer
        assert ObsTimer is UtilsTimer
        with UtilsTimer() as t:
            time.sleep(0.002)
        assert t.elapsed > 0


class TestEvents:
    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run = TelemetryRun(JsonlSink(path), run_id="test-run")
        run.emit("run_begin", command="test")
        with run.span("phase"):
            pass
        run.registry.counter("train.steps").inc(5)
        run.emit("step", step=0, loss=0.5, lr=1e-3)
        run.close()

        events = read_events(path)
        for event in events:
            validate_event(event)
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "run_begin"
        assert kinds[-1] == "run_end"
        assert "span" in kinds and "metric" in kinds and "step" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["run_id"] == "test-run" for e in events)

    def test_close_is_idempotent(self, tmp_path):
        run = TelemetryRun(JsonlSink(tmp_path / "r.jsonl"), run_id="r")
        run.close()
        run.close()
        assert len(read_events(tmp_path / "r.jsonl")) == 1  # run_end only

    def test_validate_rejects_bad_events(self):
        good = {"run_id": "r", "ts": 1.0, "seq": 0, "kind": "step",
                "payload": {"step": 0, "loss": 0.1}}
        validate_event(good)
        with pytest.raises(ValueError):
            validate_event({**good, "kind": "nope"})
        with pytest.raises(ValueError):
            validate_event({**good, "payload": {"step": 0}})  # no loss
        with pytest.raises(ValueError):
            validate_event({k: v for k, v in good.items() if k != "ts"})
        with pytest.raises(ValueError):
            validate_event("not a dict")

    def test_emit_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            TelemetryRun(NullSink()).emit("bogus")

    def test_null_sink_drops_everything(self):
        run = TelemetryRun(NullSink(), run_id="quiet")
        run.emit("run_begin")
        run.close()  # no error, nothing persisted


class TestProfiler:
    def test_matmul_flops_exact(self):
        with profile() as prof:
            a = Tensor(np.ones((4, 5)), requires_grad=True)
            b = Tensor(np.ones((5, 3)))
            c = a @ b
        assert prof.ops["matmul"].calls == 1
        assert prof.ops["matmul"].flops == 2 * 4 * 5 * 3
        assert prof.ops["matmul"].bytes == c.data.nbytes

    def test_backward_estimate_is_twice_forward(self):
        with profile() as prof:
            a = Tensor(np.ones((4, 5)), requires_grad=True)
            loss = (a @ Tensor(np.ones((5, 3)))).sum()
            forward = prof.total_flops
            loss.backward()
        assert prof.ops["backward"].calls == 1
        assert prof.ops["backward"].flops == pytest.approx(2 * forward)

    def test_op_kinds_normalized(self):
        with profile() as prof:
            a = Tensor(np.ones(8), requires_grad=True)
            _ = (1.0 + a) * 2.0 - a
            _ = a.softmax()
        assert "add" in prof.ops and "mul" in prof.ops
        assert "softmax" in prof.ops
        assert not any(k.startswith("__") for k in prof.ops)

    def test_hooks_restored_after_exit(self):
        original_make = Tensor._make
        original_backward = Tensor.backward
        with profile():
            assert Tensor._make is not original_make
        assert Tensor._make is original_make
        assert Tensor.backward is original_backward

    def test_hooks_restored_on_error(self):
        original_make = Tensor._make
        with pytest.raises(RuntimeError, match="boom"):
            with profile():
                raise RuntimeError("boom")
        assert Tensor._make is original_make

    def test_nesting_rejected(self):
        with profile():
            with pytest.raises(RuntimeError, match="nested"):
                with profile():
                    pass

    def test_table_renders(self):
        with profile() as prof:
            _ = Tensor(np.ones((2, 2))) @ Tensor(np.ones((2, 2)))
        table = prof.table()
        assert "matmul" in table and "MFLOPs" in table


class TestCallbacks:
    def test_resolve_shims_legacy_log(self):
        lines = []
        cb = CallbackList.resolve(None, lines.append)
        assert len(cb) == 1 and bool(cb)
        assert isinstance(cb.callbacks[0], LoggingCallback)
        assert not CallbackList.resolve(None, None)

    def test_logging_callback_finetune_format(self):
        lines = []
        cb = LoggingCallback(lines.append)
        cb.on_eval({"phase": "finetune", "epoch": 0, "f1": 0.412,
                    "zero_shot": True})
        cb.on_epoch_end({"phase": "finetune", "epoch": 1,
                         "train_loss": 0.512, "f1": 0.871,
                         "seconds": 2.34})
        assert lines == ["epoch 0 (zero-shot) F1 41.2",
                         "epoch 1 loss 0.512 F1 87.1 (2.3s)"]

    def test_logging_callback_pretrain_format(self):
        lines = []
        cb = LoggingCallback(lines.append, every=2)
        cb.on_train_begin({"phase": "pretrain", "steps": 4})
        for step in range(4):
            cb.on_step({"phase": "pretrain", "step": step,
                        "loss": float(step)})
        assert lines == ["step 2/4 loss 0.500", "step 4/4 loss 2.500"]


def _tiny_splits(scale=0.04):
    from repro.data import load_benchmark, split_dataset
    from repro.utils import child_rng
    data = load_benchmark("dblp-acm", seed=7, scale=scale)
    return split_dataset(data, child_rng(7, "split", "dblp-acm"))


class TestFineTuneIntegration:
    def test_event_sequence(self, tiny_bert):
        splits = _tiny_splits()
        sink = MemorySink()
        run = TelemetryRun(sink, run_id="itest")
        config = FineTuneConfig(epochs=2, batch_size=8)
        result = fine_tune(tiny_bert, splits.train, splits.test,
                           config=config, seed=0,
                           callbacks=[TelemetryCallback(run)])
        run.close()

        events = sink.events
        for event in events:
            validate_event(event)
        kinds = [e["kind"] for e in events]
        # Expected shape: train_begin, zero-shot eval, then per epoch
        # N steps + eval + epoch_end, then train_end (+ spans/metrics
        # from close()).
        assert kinds[0] == "train_begin"
        begin = events[0]["payload"]
        assert begin["phase"] == "finetune"
        steps_per_epoch = begin["steps_per_epoch"]

        assert kinds[1] == "eval"
        assert events[1]["payload"]["epoch"] == 0
        assert events[1]["payload"]["zero_shot"] is True

        evals = [e["payload"] for e in events if e["kind"] == "eval"]
        assert [p["epoch"] for p in evals] == [0, 1, 2]
        epoch_ends = [e["payload"] for e in events
                      if e["kind"] == "epoch_end"]
        assert [p["epoch"] for p in epoch_ends] == [1, 2]
        steps = [e["payload"] for e in events if e["kind"] == "step"]
        assert len(steps) == 2 * steps_per_epoch
        assert all({"loss", "lr", "grad_norm",
                    "examples_per_sec"} <= p.keys() for p in steps)
        assert kinds.index("train_end") > kinds.index("epoch_end")
        # close() drained spans: epoch and eval spans must be present.
        span_names = {e["payload"]["name"] for e in events
                      if e["kind"] == "span"}
        assert {"epoch", "eval", "setup"} <= span_names
        # Registry metrics fed by TelemetryCallback arrived too.
        metric_names = {e["payload"]["name"] for e in events
                        if e["kind"] == "metric"}
        assert "train.steps" in metric_names
        # And the result still matches the events.
        assert result.final_f1 == pytest.approx(evals[-1]["f1"])

    def test_legacy_log_shim_unchanged_lines(self, tiny_bert):
        splits = _tiny_splits()
        lines = []
        fine_tune(tiny_bert, splits.train, splits.test,
                  config=FineTuneConfig(epochs=1, batch_size=8),
                  seed=0, log=lines.append)
        assert lines[0].startswith("epoch 0 (zero-shot) F1 ")
        assert lines[1].startswith("epoch 1 loss ")
        assert lines[1].endswith("s)")

    def test_report_renders_from_run(self, tiny_bert, tmp_path):
        splits = _tiny_splits()
        path = tmp_path / "ft.jsonl"
        run = TelemetryRun(JsonlSink(path), run_id="report-test")
        run.emit("run_begin", command="test")
        with profile() as prof:
            fine_tune(tiny_bert, splits.train, splits.test,
                      config=FineTuneConfig(epochs=1, batch_size=8),
                      seed=0, callbacks=[TelemetryCallback(run)])
        run.emit("profile", ops=prof.as_dict())
        run.close()
        report = load_report(path)
        assert "slowest spans" in report
        assert "op profile" in report and "matmul" in report
        assert "F1 by epoch" in report
        assert "throughput" in report


class TestFineTuneResultGuards:
    def test_empty_history_raises_value_error(self):
        result = FineTuneResult(classifier=None)
        with pytest.raises(ValueError, match="history is empty"):
            result.best_f1
        with pytest.raises(ValueError, match="history is empty"):
            result.final_f1
        assert result.f1_curve() == []


class TestPretrainEvents:
    def test_pretrain_emits_steps(self, tiny_settings):
        from repro.models import default_config
        from repro.pretraining import PretrainRecipe, pretrain
        from repro.pretraining.model_zoo import _train_tokenizer
        from repro.utils import child_rng
        tokenizer = _train_tokenizer("bert", tiny_settings, seed=0)
        config = default_config(
            "bert", vocab_size=len(tokenizer.vocab),
            d_model=tiny_settings.d_model,
            num_layers=tiny_settings.num_layers,
            num_heads=tiny_settings.num_heads,
            max_position=tiny_settings.max_position)
        recipe = PretrainRecipe(steps=4, batch_size=4, seq_len=24,
                                num_examples=40, num_documents=20,
                                use_nsp=True)
        sink = MemorySink()
        run = TelemetryRun(sink, run_id="pretrain-test")
        pretrain(config, tokenizer, recipe, child_rng(0, "pt"),
                 callbacks=[TelemetryCallback(run)])
        run.close()
        kinds = [e["kind"] for e in sink.events]
        assert kinds[0] == "train_begin"
        assert sink.events[0]["payload"]["phase"] == "pretrain"
        assert kinds.count("step") == 4
        assert "train_end" in kinds
        for event in sink.events:
            validate_event(event)


class TestTelemetrySmoke:
    """The CI smoke check: `repro match --telemetry` end to end."""

    def test_cli_match_telemetry_smoke(self, tmp_path, capsys):
        jsonl = tmp_path / "run.jsonl"
        rc = main(["match", "bert", "itunes-amazon",
                   "--scale", "0.1", "--epochs", "1", "--smoke",
                   "--zoo-dir", str(tmp_path / "zoo"),
                   "--telemetry", str(jsonl)])
        assert rc == 0
        assert "telemetry written to" in capsys.readouterr().out
        events = read_events(jsonl)
        for event in events:
            validate_event(event)
        kinds = {e["kind"] for e in events}
        assert {"run_begin", "train_begin", "step", "eval", "epoch_end",
                "train_end", "span", "run_end"} <= kinds
        # And the CLI report subcommand renders it.
        assert main(["telemetry", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out
        assert "slowest spans" in out

    def test_report_of_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert main(["telemetry", str(path)]) == 0
        assert "no events" in capsys.readouterr().out


class TestBenchSidecar:
    def test_emit_writes_telemetry_sidecar(self, tmp_path, monkeypatch,
                                           capsys):
        import importlib.util
        spec = importlib.util.spec_from_file_location(
            "bench_shared", "benchmarks/_shared.py")
        shared = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(shared)
        monkeypatch.setattr(shared, "OUT_DIR", tmp_path)
        with trace("bench-phase"):
            pass
        shared.emit("smoke", "hello")
        assert (tmp_path / "smoke.txt").read_text() == "hello\n"
        events = read_events(tmp_path / "smoke.telemetry.jsonl")
        for event in events:
            validate_event(event)
        assert events[0]["kind"] == "run_begin"
        names = {e["payload"].get("name") for e in events
                 if e["kind"] == "span"}
        assert "bench-phase" in names
