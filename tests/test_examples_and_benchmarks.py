"""Examples and benchmark modules: syntax-valid, documented, well-formed.

Executing the examples needs the full model zoo (minutes of CPU), so the
test suite checks everything short of that: each script compiles, has a
module docstring and a main() guard, and each benchmark module targets a
real table/figure via the shared helpers.
"""

import ast
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))
BENCHMARKS = sorted((ROOT / "benchmarks").glob("bench_*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_with_docstring_and_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    has_main_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body)
    assert has_main_guard, f"{path.name} lacks a __main__ guard"
    functions = [n.name for n in ast.walk(tree)
                 if isinstance(n, ast.FunctionDef)]
    assert "main" in functions


def test_at_least_three_examples_exist():
    assert len(EXAMPLES) >= 3
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names


@pytest.mark.parametrize("path", BENCHMARKS, ids=lambda p: p.name)
def test_benchmark_module_well_formed(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    test_functions = [n.name for n in tree.body
                      if isinstance(n, ast.FunctionDef)
                      and n.name.startswith("test_")]
    assert test_functions, f"{path.name} has no test function"
    source = path.read_text()
    assert "benchmark" in source
    assert "emit(" in source  # persists its rendered output


def test_every_paper_artifact_has_a_benchmark():
    names = {p.stem for p in BENCHMARKS}
    for expected in ("bench_table3_datasets", "bench_table5_comparison",
                     "bench_table6_training_time", "bench_figure10_abt_buy",
                     "bench_figure11_itunes_amazon",
                     "bench_figure12_walmart_amazon",
                     "bench_figure13_dblp_acm",
                     "bench_figure14_dblp_scholar", "bench_convergence",
                     "bench_ablations"):
        assert expected in names, expected


@pytest.mark.serve
def test_serve_bench_cli_smoke(tiny_zoo_dir, tmp_path):
    """``repro bench serve --smoke`` runs end to end and writes a
    schema-valid ``BENCH_serve.json`` (the one benchmark exercising the
    serving stack on the real clock)."""
    from repro.serve import validate_serve_report
    out = tmp_path / "BENCH_serve.json"
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "bench", "serve", "--smoke",
         "--zoo-dir", str(tiny_zoo_dir), "--output", str(out)],
        cwd=ROOT, capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(ROOT / "src")},
        check=False)
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert validate_serve_report(report) == []
    assert report["smoke"] is True
    assert "serial baseline" in proc.stdout


def test_examples_import_only_public_api():
    """Examples should demonstrate the public API, not internals."""
    for path in EXAMPLES:
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                if node.module.startswith("repro"):
                    parts = node.module.split(".")
                    # allow one level below the top packages
                    assert len(parts) <= 3, \
                        f"{path.name} imports deep internal {node.module}"
