"""Public API surface: every ``__all__`` export exists, is documented,
and the package layers only depend downward."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.nn",
    "repro.tokenizers",
    "repro.models",
    "repro.pretraining",
    "repro.data",
    "repro.matching",
    "repro.baselines",
    "repro.evaluation",
    "repro.obs",
    "repro.utils",
    "repro.analysis",
    "repro.analysis.concurrency",
    "repro.resilience",
    "repro.perf",
    "repro.serve",
    "repro.dedupe",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports_and_all_resolves(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} lacks a module docstring"
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


@pytest.mark.parametrize("name", PACKAGES[1:])
def test_public_classes_and_functions_documented(name):
    module = importlib.import_module(name)
    undocumented = []
    for symbol in getattr(module, "__all__", []):
        obj = getattr(module, symbol)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(symbol)
    assert not undocumented, f"{name}: undocumented {undocumented}"


def test_nn_layer_does_not_import_models():
    import repro.nn as nn_pkg
    import sys
    # importing repro.nn alone must not pull in the model layer
    for mod in list(sys.modules):
        if mod.startswith("repro.nn"):
            source = inspect.getsource(sys.modules[mod]) \
                if hasattr(sys.modules[mod], "__file__") else ""
            assert "from ..models" not in source
            assert "import repro.models" not in source


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_cli_module_entrypoint_exists():
    from repro.cli import build_parser, main
    assert callable(main)
    parser = build_parser()
    assert parser.prog == "repro"


def test_architectures_constant_consistent():
    from repro.models import ARCHITECTURES
    from repro.evaluation import ALL_ARCHS
    assert set(ARCHITECTURES) == set(ALL_ARCHS)


def test_paper_constants_consistent():
    from repro.evaluation import PAPER_TABLE5, PAPER_TABLE6_SECONDS, \
        ALL_DATASETS
    assert set(PAPER_TABLE5) == set(ALL_DATASETS)
    assert set(PAPER_TABLE6_SECONDS) == set(ALL_DATASETS)
    # the paper's headline: best transformer wins on every dataset
    for magellan, deepmatcher, transformer in PAPER_TABLE5.values():
        assert transformer > max(magellan, deepmatcher)
