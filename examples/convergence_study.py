"""Scenario: how much fine-tuning does a pre-trained transformer need?

Reproduces the paper's §5.4 analysis on one dataset: the zero-shot point
(no fine-tuning at all), the per-epoch F1 curve, and the derived
convergence summary — plus the same curve for a from-scratch model, which
is the paper's implicit ablation ("pre-training is what makes 1-3 epochs
enough").

    python examples/convergence_study.py
"""

from repro.data import load_benchmark, split_dataset
from repro.evaluation import CellResult, analyze_convergence
from repro.matching import FineTuneConfig, fine_tune
from repro.models import build_backbone
from repro.pretraining import PretrainedModel, get_pretrained
from repro.utils import child_rng, format_series


def main() -> None:
    data = load_benchmark("dblp-acm", seed=7, scale=0.08)
    splits = split_dataset(data, child_rng(7, "split"))
    config = FineTuneConfig(epochs=6)

    print("Fine-tuning the pre-trained BERT checkpoint ...")
    pretrained = get_pretrained("bert", seed=0)
    tuned = fine_tune(pretrained, splits.train, splits.test, config,
                      seed=1, log=lambda m: print(f"  {m}"))

    print("\nFine-tuning the same architecture from random init ...")
    scratch_backbone = build_backbone(pretrained.config,
                                      child_rng(1, "scratch"))
    scratch_backbone.special_token_ids = \
        pretrained.tokenizer.vocab.special_ids()
    scratch = PretrainedModel("bert", pretrained.config, scratch_backbone,
                              pretrained.tokenizer, from_cache=False)
    untuned = fine_tune(scratch, splits.train, splits.test, config, seed=1)

    pre_curve = [f * 100 for f in tuned.f1_curve()]
    raw_curve = [f * 100 for f in untuned.f1_curve()]
    print("\n" + format_series("pre-trained ", pre_curve))
    print(format_series("from-scratch", raw_curve))

    summary = analyze_convergence(
        CellResult("bert", data.name, f1_curves=[pre_curve]))
    print(f"\nzero-shot F1          : {summary.zero_shot_f1:.1f}")
    print(f"peak F1               : {summary.peak_f1:.1f}")
    print(f"epochs to within 5pts : {summary.epochs_to_within_5pct}")
    print(f"converged at epoch    : {summary.convergence_epoch}")
    print(f"\npre-training advantage at epoch 1: "
          f"{pre_curve[1] - raw_curve[1]:+.1f} F1 points")


if __name__ == "__main__":
    main()
