"""Serving: match streaming record pairs through the micro-batcher.

The paper evaluates matching offline in bulk, but a deployed matcher
receives pairs one at a time.  This example fine-tunes a small matcher,
then stands up the in-process :class:`repro.serve.MatchService` and
streams a Poisson workload through it:

1. fine-tune DistilBERT on dblp-acm at reduced scale (tiny settings, so
   the first run only takes a few minutes on CPU);
2. serve the same test pairs two ways — serial ``match_many`` versus a
   :class:`~repro.serve.MatchService` that coalesces concurrent
   requests into length-bucketed model batches;
3. show both paths agree decision for decision, then print the
   service's latency distribution and what its queue metrics recorded.

    python examples/serving_throughput.py
"""

from repro.data import load_benchmark, split_dataset
from repro.matching import EntityMatcher, FineTuneConfig
from repro.obs import MetricsRegistry
from repro.pretraining import ZooSettings
from repro.serve import (MatcherBackend, MatchService, ServeConfig,
                         generate_workload, run_simulation)
from repro.utils import child_rng


def main() -> None:
    print("Loading dblp-acm at reduced scale ...")
    data = load_benchmark("dblp-acm", seed=7, scale=0.05)
    splits = split_dataset(data, child_rng(7, "split"))

    print("Fine-tuning DistilBERT (tiny settings) ...")
    matcher = EntityMatcher(
        "distilbert",
        zoo_settings=ZooSettings(base_steps=25, base_examples=150,
                                 tokenizer_sentences=150, vocab_size=220,
                                 d_model=32, num_layers=2, num_heads=2,
                                 max_position=64, seq_len=32),
        finetune_config=FineTuneConfig(epochs=1, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(splits.train, splits.test,
                log=lambda message: print(f"  {message}"))

    pairs = [(pair.record_a, pair.record_b) for pair in splits.test]
    print(f"\nMatching {len(pairs)} pairs serially ...")
    serial = matcher.match_many(pairs, fast=True)

    print("Standing up the micro-batching service ...")
    registry = MetricsRegistry()
    service = MatchService(
        MatcherBackend(matcher, batch_size=32),
        ServeConfig(max_batch_size=32, max_wait_ms=10.0,
                    max_queue=max(64, len(pairs))),
        registry=registry)
    workload = generate_workload(pairs, num_requests=len(pairs),
                                 rate=200.0, seed=7, pattern="poisson")
    report = run_simulation(service, workload)

    agreements = sum(
        1 for outcome in serial
        if report.outcomes[outcome.index].matched == outcome.matched)
    print(f"\nService vs. serial decisions: {agreements}/{len(serial)} "
          f"agree")
    print(f"Completed {report.completed}/{report.offered} at "
          f"{report.throughput:.1f} req/s "
          f"(p50 {report.latency_quantile(0.5) * 1000:.1f} ms, "
          f"p95 {report.latency_quantile(0.95) * 1000:.1f} ms)")
    print(f"Batches formed: "
          f"{registry.histogram('serve.batch.size').count}, "
          f"mean size "
          f"{registry.histogram('serve.batch.size').mean:.1f}")


if __name__ == "__main__":
    main()
