"""Scenario: integrating two product catalogs (the paper's Tables 1-2).

Two retailers publish the same products with different schemas and
conventions — one structured (title/brand/model/price), one mostly
textual.  The pipeline fine-tunes a transformer matcher on labeled pairs
and then sweeps a candidate table, producing the merged-catalog report a
data-integration engineer would consume: matched pairs, conflicts, and
per-decision probabilities.

    python examples/catalog_deduplication.py
"""

import numpy as np

from repro.data import load_benchmark, split_dataset
from repro.matching import EntityMatcher, FineTuneConfig
from repro.utils import child_rng, format_table


def main() -> None:
    print("Building the two-catalog matching task (Abt-Buy style, "
          "textual) ...")
    data = load_benchmark("abt-buy", seed=13, scale=0.06)
    splits = split_dataset(data, child_rng(13, "split"))
    print(f"  train {len(splits.train)} / validation "
          f"{len(splits.validation)} / test {len(splits.test)} pairs")

    matcher = EntityMatcher("bert",
                            finetune_config=FineTuneConfig(epochs=4))
    matcher.fit(splits.train, splits.test,
                log=lambda m: print(f"  {m}"))

    print("\nSweeping the test candidate table ...")
    predictions = matcher.predict(splits.test)
    labels = np.array(splits.test.labels())

    rows = []
    shown = 0
    for pair, predicted, gold in zip(splits.test.pairs, predictions,
                                     labels):
        if shown >= 8:
            break
        if predicted == 1 or gold == 1:
            probability = matcher.match_probability(pair.record_a,
                                                    pair.record_b)
            verdict = "MATCH" if predicted else "no match"
            flag = "" if predicted == gold else "  <-- disagrees with gold"
            rows.append([
                pair.record_a.text_blob(
                    data.serialization_attributes())[:38],
                pair.record_b.text_blob(
                    data.serialization_attributes())[:38],
                f"{probability:.2f}", verdict + flag])
            shown += 1
    print(format_table(["Catalog A", "Catalog B", "P(match)", "decision"],
                       rows, title="Merged-catalog decisions (sample)"))

    metrics = matcher.evaluate(splits.test).as_percent()
    kept = int(predictions.sum())
    print(f"\n{kept} pairs linked across catalogs; "
          f"F1 {metrics.f1:.1f} against gold labels "
          f"({metrics.true_positives} correct links, "
          f"{metrics.false_positives} spurious, "
          f"{metrics.false_negatives} missed).")


if __name__ == "__main__":
    main()
