"""Scenario: deduplicating a raw product catalog end to end.

A retailer's catalog has accumulated duplicate listings — the same
product entered by different vendors with drifting model numbers, typos
and missing fields.  Unlike the paper's benchmarks, nothing is
pre-paired: the pipeline must first *block* (generate candidate pairs
without touching the O(n²) cross product), then score each candidate,
then transitively cluster the matches into entity ids.

The walkthrough runs the full `repro dedupe` pipeline twice — once with
the fast token-Jaccard scorer, once with the blended string-similarity
scorer — and reports blocking quality (pairs-completeness / reduction
ratio) plus clustering accuracy (adjusted Rand) against the generated
catalog's gold entity assignment.

    python examples/catalog_deduplication.py
"""

from repro.data import MinHashLSHBlocker, evaluate_blocking
from repro.data.generators import NoiseProfile
from repro.dedupe import (DedupeConfig, SimilarityEngine,
                          adjusted_rand_index, dedupe_records,
                          generate_catalog, write_clusters)
from repro.utils import format_table


def main() -> None:
    print("Generating a 3000-listing catalog with seeded duplicates ...")
    profile = NoiseProfile(p_synonym=0.1, p_typo=0.01, p_drop_word=0.03,
                           p_missing_attr=0.0, p_code_drift=0.2)
    catalog = generate_catalog(3000, seed=2, profile=profile)
    gold = catalog.gold_pairs()
    print(f"  {len(catalog)} records, {catalog.meta['num_entities']} "
          f"true entities, {len(gold)} duplicate pairs hidden inside "
          f"{len(catalog) * (len(catalog) - 1) // 2} possible pairs")

    print("\nBlocking with MinHash-LSH (128 permutations, 32 bands "
          "of 4 rows) ...")
    blocker = MinHashLSHBlocker(num_permutations=128, band_size=4, seed=0)
    quality = evaluate_blocking(blocker.candidates(catalog.records),
                                gold, len(catalog))
    print(f"  {quality} — found {quality.pairs_completeness:.1%} of true "
          f"duplicates while pruning {quality.reduction_ratio:.2%} of "
          f"the cross product")
    threshold_50 = blocker.jaccard_at(0.5)
    print(f"  (b, r) collision curve crosses 50% at Jaccard "
          f"{threshold_50:.3f}")

    rows = []
    for scorer, threshold in (("jaccard", 0.5), ("blend", 0.65)):
        result = dedupe_records(
            catalog.records, blocker, SimilarityEngine(scorer=scorer),
            DedupeConfig(threshold=threshold))
        ari = adjusted_rand_index(result.entity_ids,
                                  catalog.gold_labels())
        rows.append([scorer, f"{threshold:.2f}",
                     str(result.num_candidates), str(result.num_matches),
                     f"{result.num_entities} / "
                     f"{catalog.meta['num_entities']}",
                     f"{ari:.4f}"])
        if scorer == "blend":
            write_clusters("clusters.json", result)
    print(format_table(
        ["scorer", "threshold", "candidates", "matches",
         "entities / gold", "adjusted Rand"],
        rows, title="Block -> score -> cluster"))
    print("\nCluster artifact written to clusters.json "
          "(canonical JSON: identical runs are byte-identical).")
    print("Scale it up: `python -m repro dedupe --records 100000` or "
          "`python -m repro bench blocking` for the enforced gate.")


if __name__ == "__main__":
    main()
