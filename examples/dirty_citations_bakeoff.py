"""Scenario: deduplicating dirty bibliographic data, three ways.

DBLP-Scholar-style citation records whose attribute values migrated into
the title field (the "dirty" corruption of Mudgal et al.).  All three
systems the paper compares run on the same splits:

* Magellan  — attribute-aligned similarity features + classical learner;
* DeepMatcher — word embeddings + RNN/attention, trained from scratch;
* a fine-tuned transformer (paper's approach).

The point of the exercise is the paper's Table 5 row: structure
destruction hurts the attribute-aligned baseline most.

    python examples/dirty_citations_bakeoff.py
"""

from repro.baselines import DeepMatcher, DeepMatcherConfig, MagellanMatcher
from repro.data import load_benchmark, split_dataset
from repro.matching import EntityMatcher, FineTuneConfig
from repro.obs import trace
from repro.utils import child_rng, format_table


def main() -> None:
    print("Generating DBLP-Scholar (dirty) at reduced scale ...")
    data = load_benchmark("dblp-scholar", seed=21, scale=0.04)
    splits = split_dataset(data, child_rng(21, "split"))

    example = next(pair for pair in splits.test.pairs if pair.label == 1)
    print("A matching pair after the dirty transform:")
    print(f"  A: {example.record_a.values}")
    print(f"  B: {example.record_b.values}\n")

    rows = []

    with trace("magellan") as span:
        magellan = MagellanMatcher(seed=0).run(
            splits.train, splits.validation, splits.test)
    rows.append(["Magellan", magellan.chosen_learner,
                 f"{magellan.test_metrics.f1 * 100:.1f}",
                 f"{span.wall:.0f}s"])

    with trace("deepmatcher") as span:
        deepmatcher = DeepMatcher(DeepMatcherConfig(epochs=6),
                                  seed=0).run(
            splits.train, splits.validation, splits.test)
    rows.append(["DeepMatcher", deepmatcher.chosen_variant,
                 f"{deepmatcher.test_metrics.f1 * 100:.1f}",
                 f"{span.wall:.0f}s"])

    with trace("transformer") as span:
        matcher = EntityMatcher(
            "roberta", finetune_config=FineTuneConfig(epochs=4))
        matcher.fit(splits.train, splits.test)
        transformer = matcher.evaluate(splits.test)
    rows.append(["Transformer", "roberta",
                 f"{transformer.f1 * 100:.1f}", f"{span.wall:.0f}s"])

    print(format_table(["System", "selected model", "test F1", "time"],
                       rows, title="Dirty-citation bake-off"))


if __name__ == "__main__":
    main()
