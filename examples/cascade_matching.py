"""Quantize, calibrate and serve the DistilBERT→RoBERTa cascade.

The paper's Table 5 ordering — DistilBERT fastest but weakest, RoBERTa
slowest but best — is exactly the shape a confidence cascade exploits:
let the cheap model decide every pair it is sure about and reserve the
expensive model for the ambiguous band.  This example walks the whole
performance-v2 pipeline end to end:

1. fine-tune DistilBERT and RoBERTa on dblp-acm at reduced scale (tiny
   settings, so the first run takes seconds on CPU);
2. calibrate int8 per-channel quantized weights for the DistilBERT
   primary and gate them on decision consistency against the float
   path;
3. calibrate the ambiguity band on the validation split and time the
   cascade against serial RoBERTa on the test pairs;
4. stand the cascade up behind a :class:`repro.serve.MatchService` and
   show the ``cascade.*`` escalation telemetry it records.

    python examples/cascade_matching.py
"""

import time

from repro.data import load_benchmark, split_dataset
from repro.matching import (EntityMatcher, FineTuneConfig, build_cascade,
                            evaluate_predictions)
from repro.obs import MetricsRegistry
from repro.pretraining import ZooSettings
from repro.serve import CascadeBackend, MatchService, ServeConfig
from repro.utils import child_rng

TINY = ZooSettings(base_steps=25, base_examples=150,
                   tokenizer_sentences=150, vocab_size=220,
                   d_model=32, num_layers=2, num_heads=2,
                   max_position=64, seq_len=32)


def fitted(arch: str, splits) -> EntityMatcher:
    print(f"Fine-tuning {arch} (tiny settings) ...")
    matcher = EntityMatcher(
        arch, zoo_settings=TINY,
        finetune_config=FineTuneConfig(epochs=3, batch_size=8,
                                       max_length_cap=32))
    matcher.fit(splits.train, splits.validation,
                log=lambda message: print(f"  {message}"))
    return matcher


def main() -> None:
    print("Loading dblp-acm at reduced scale ...")
    data = load_benchmark("dblp-acm", seed=7, scale=0.05)
    splits = split_dataset(data, child_rng(7, "split"))

    primary = fitted("distilbert", splits)
    secondary = fitted("roberta", splits)

    print("\nCalibrating int8 weights for the DistilBERT primary ...")
    train_pairs = [(p.record_a, p.record_b) for p in splits.train.pairs]
    primary.quantize(train_pairs[:48])
    report = primary.quantization_consistency(train_pairs[48:96])
    weights = primary.quantized_weights
    print(f"  {len(weights.layers)} layers, "
          f"{weights.nbytes / 1024:.0f} KiB artifact")
    print(f"  decision consistency {report.consistency:.3f} on "
          f"{report.pairs} held-out pairs "
          f"(max probability delta {report.max_probability_delta:.1e})")

    print("\nCalibrating the ambiguity band on the validation split ...")
    registry = MetricsRegistry()
    cascade = build_cascade(primary, secondary, splits.validation,
                            quantized=True, registry=registry)
    band = cascade.calibration
    print(f"  band [{band.lo:.3f}, {band.hi:.3f}] escalates "
          f"{band.escalation_rate * 100.0:.1f}% of validation pairs "
          f"(cascade F1 {band.f1:.3f} vs secondary "
          f"{band.secondary_f1:.3f})")

    test_pairs = [(p.record_a, p.record_b) for p in splits.test.pairs]
    labels = splits.test.labels()

    print(f"\nMatching {len(test_pairs)} test pairs ...")
    start = time.perf_counter()
    reference = secondary.match_many(test_pairs, fast=False)
    serial_seconds = time.perf_counter() - start
    start = time.perf_counter()
    outcomes = cascade.score_pairs(test_pairs, fallback=False)
    cascade_seconds = time.perf_counter() - start

    f1_secondary = evaluate_predictions(
        labels, [o.matched for o in reference]).f1
    f1_cascade = evaluate_predictions(
        labels, [o.matched for o in outcomes]).f1
    print(f"  serial RoBERTa: "
          f"{len(test_pairs) / serial_seconds:8.1f} pairs/sec  "
          f"F1 {f1_secondary:.3f}")
    print(f"  cascade:        "
          f"{len(test_pairs) / cascade_seconds:8.1f} pairs/sec  "
          f"F1 {f1_cascade:.3f}  "
          f"({serial_seconds / cascade_seconds:.2f}x, escalation "
          f"{cascade.last_escalation_rate() * 100.0:.1f}%)")

    print("\nServing the cascade through the micro-batcher ...")
    service = MatchService(
        CascadeBackend(cascade),
        ServeConfig(max_batch_size=32, max_wait_ms=5.0,
                    max_queue=len(test_pairs)),
        registry=registry)
    with service:
        tickets = service.submit_many(test_pairs)
        served = [ticket.result(timeout=120.0) for ticket in tickets]
    agree = sum(1 for a, b in zip(served, outcomes)
                if a.matched == b.matched)
    print(f"  {agree}/{len(served)} served decisions agree with the "
          f"bulk cascade")
    for name in ("cascade.pairs", "cascade.escalated.pairs"):
        print(f"  {name} = "
              f"{registry.counter(name).snapshot()['value']:.0f}")


if __name__ == "__main__":
    main()
