"""Quickstart: fine-tune a pre-trained transformer for entity matching.

Mirrors the paper's pipeline end to end:

1. load a benchmark dataset (Walmart-Amazon, dirty variant, reduced scale);
2. split 3:1:1 into train/validation/test;
3. fine-tune a pre-trained RoBERTa with the high-level EntityMatcher API;
4. evaluate F1 on the test split and match one ad-hoc record pair.

First run pre-trains and caches the RoBERTa checkpoint (a few minutes of
CPU); subsequent runs load it instantly.

    python examples/quickstart.py
"""

from repro.data import load_benchmark, split_dataset
from repro.matching import EntityMatcher, FineTuneConfig
from repro.utils import child_rng


def main() -> None:
    print("Loading Walmart-Amazon (dirty) at reduced scale ...")
    data = load_benchmark("walmart-amazon", seed=7, scale=0.08)
    splits = split_dataset(data, child_rng(7, "split"))
    stats = data.stats()
    print(f"  {stats.size} candidate pairs, {stats.num_matches} matches, "
          f"{stats.num_attributes} attributes")

    print("Fine-tuning RoBERTa (pre-trained checkpoint from the zoo) ...")
    matcher = EntityMatcher(
        "roberta", finetune_config=FineTuneConfig(epochs=4))
    matcher.fit(splits.train, splits.test,
                log=lambda message: print(f"  {message}"))

    metrics = matcher.evaluate(splits.test).as_percent()
    print(f"\nTest F1 {metrics.f1:.1f}  "
          f"(precision {metrics.precision:.1f}, recall {metrics.recall:.1f})")

    record_a = {"title": "apexon phone zx4821 black", "category": "phone",
                "brand": "apexon", "modelno": "zx4821", "price": "499.00"}
    record_b = {"title": "apexon smartphone ZX 4821", "category": "phone",
                "brand": "", "modelno": "zx-4821", "price": "$ 499.00"}
    record_c = {"title": "apexon smartphone zx7733 white", "category": "phone",
                "brand": "apexon", "modelno": "zx7733", "price": "259.00"}
    p_match = matcher.match_probability(record_a, record_b)
    p_nonmatch = matcher.match_probability(record_a, record_c)
    print(f"\nSame product, different feeds : P(match) = {p_match:.2f}")
    print(f"Different model number        : P(match) = {p_nonmatch:.2f}")


if __name__ == "__main__":
    main()
