"""Scenario: which transformer should you deploy? (paper §5.4-5.5)

Fine-tunes all four architectures on the same dataset and reports peak
F1, epochs-to-converge, parameter count and seconds per epoch — the
paper's head-to-head comparison plus its Table 6 timing analysis, in one
report.

    python examples/architecture_shootout.py
"""

from repro.data import load_benchmark, split_dataset
from repro.evaluation import ALL_ARCHS, CellResult, analyze_convergence
from repro.matching import FineTuneConfig, fine_tune
from repro.pretraining import get_pretrained
from repro.utils import child_rng, format_duration, format_table


def main() -> None:
    data = load_benchmark("walmart-amazon", seed=7, scale=0.06)
    splits = split_dataset(data, child_rng(7, "split"))
    config = FineTuneConfig(epochs=4)

    rows = []
    for arch in ALL_ARCHS:
        print(f"Fine-tuning {arch} ...")
        pretrained = get_pretrained(arch, seed=0)
        result = fine_tune(pretrained, splits.train, splits.test, config,
                           seed=1)
        curve = [f * 100 for f in result.f1_curve()]
        summary = analyze_convergence(
            CellResult(arch, data.name, f1_curves=[curve]))
        seconds = result.epoch_seconds()
        rows.append([
            arch,
            f"{pretrained.backbone.num_parameters():,}",
            f"{summary.peak_f1:.1f}",
            summary.epochs_to_within_5pct,
            format_duration(sum(seconds) / len(seconds)),
        ])

    print("\n" + format_table(
        ["Architecture", "params", "peak F1", "epochs to -5pts",
         "s / epoch"],
        rows, title=f"Head-to-head on {data.name}"))
    print("\nPaper's finding: RoBERTa slightly best, DistilBERT slightly "
          "worse but fastest,\nXLNet competitive but slowest per epoch.")


if __name__ == "__main__":
    main()
