"""Scenario: how many labels does entity matching really need?

The paper's authors' companion work (SDS 2019) labels EM pairs with an
active-learning loop.  This example runs uncertainty-sampling active
learning with the Magellan baseline as the annotator-in-the-loop matcher
and reports F1 as a function of the label budget — the practical question
a data-integration team asks before starting an annotation campaign.

    python examples/active_learning_budget.py
"""

from repro.baselines import MagellanMatcher
from repro.data import load_benchmark, split_dataset
from repro.matching.active import (ActiveLearningConfig,
                                   active_learning_loop)
from repro.utils import child_rng, format_table


class MagellanAnnotatorLoop:
    """Adapter giving MagellanMatcher the active-learning interface."""

    def __init__(self):
        self._matcher = MagellanMatcher(seed=0)

    def fit(self, train):
        self._matcher.fit(train, None)

    def predict(self, dataset):
        return self._matcher.predict(dataset)

    def predict_proba(self, dataset):
        features, _ = self._matcher._generator.transform(dataset)
        return self._matcher._model.predict_proba(features)

    def evaluate(self, dataset):
        return self._matcher.evaluate(dataset)


def main() -> None:
    data = load_benchmark("dblp-scholar", seed=31, scale=0.05)
    splits = split_dataset(data, child_rng(31, "split"))
    print(f"Unlabeled pool: {len(splits.train)} pairs; "
          f"test: {len(splits.test)} pairs\n")

    config = ActiveLearningConfig(seed_size=24, batch_per_round=24,
                                  rounds=5)
    result = active_learning_loop(MagellanAnnotatorLoop, splits.train,
                                  splits.test, config)

    rows = [[r.round_index, r.labeled_count,
             f"{r.test_metrics.f1 * 100:.1f}"]
            for r in result.rounds]
    print(format_table(["round", "labels used", "test F1"], rows,
                       title="Label budget vs F1 (uncertainty sampling)"))

    full = MagellanAnnotatorLoop()
    full.fit(splits.train)
    full_f1 = full.evaluate(splits.test).f1 * 100
    print(f"\nAll {len(splits.train)} labels: F1 {full_f1:.1f} — "
          f"active learning reached {result.final_f1 * 100:.1f} with "
          f"{result.labels_used()[-1]} labels.")


if __name__ == "__main__":
    main()
