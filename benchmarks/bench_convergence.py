"""Convergence analysis (§5.4): zero-shot vs per-epoch performance.

Summarizes, per architecture, how many epochs fine-tuning needs to come
within 5 F1 points of its peak on each dataset.  The paper's claim:
within one epoch for most (dataset, architecture) cells; convergence by
epoch 3-5.
"""

from repro.evaluation import (ALL_ARCHS, analyze_convergence, figure,
                              FIGURE_DATASETS)
from repro.utils import format_table

from _shared import bench_scale, emit, run_once


def _run():
    scale = bench_scale()
    rows = []
    for number in sorted(FIGURE_DATASETS):
        result = figure(number, scale)
        for arch, cell in result.cells.items():
            summary = analyze_convergence(cell)
            rows.append([
                result.dataset, arch,
                f"{summary.zero_shot_f1:.1f}",
                f"{summary.peak_f1:.1f}",
                summary.epochs_to_within_5pct,
                summary.convergence_epoch,
            ])
    return format_table(
        ["Dataset", "Arch", "zero-shot F1", "peak F1",
         "epochs to -5pts", "converged at"],
        rows, title="Convergence summary (paper: ~1 epoch, converge 3-5)")


def test_convergence(benchmark):
    text = run_once(benchmark, _run)
    emit("convergence", text)
    assert "zero-shot" in text
