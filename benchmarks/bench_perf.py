"""Inference throughput — the fused no-tape fast path must pay off.

Times ``match_many`` for every architecture two ways on the same
workload (dblp-acm record pairs, each unique pair matched twice so the
tokenization cache sees repeats):

1. baseline — serial per-pair matching, fused kernels off, no cache:
   the pre-optimization path;
2. fast — length-bucketed batches + fused no-tape kernels + cache.

The acceptance floor (BERT fast path >= 2x baseline pairs/sec) is
enforced on full runs and recorded in ``BENCH_perf.json`` at the repo
root; ``--smoke`` runs a few pairs only to validate plumbing and the
report schema.  Decisions must agree between both paths — a speedup
that changes answers is a bug, not an optimization.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.perf import (SPEEDUP_THRESHOLD, run_perf_benchmark,
                        validate_report, write_report)

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_perf.json"


def _format_report(report: dict) -> str:
    lines = [f"match_many throughput "
             f"({report['config']['pairs']} pairs, batch size "
             f"{report['config']['batch_size']}"
             f"{', smoke' if report['smoke'] else ''})"]
    for arch, entry in report["architectures"].items():
        cache = entry["cache"]
        lines.append(
            f"  {arch:<10} {entry['baseline_pairs_per_sec']:8.1f} -> "
            f"{entry['fast_pairs_per_sec']:8.1f} pairs/s  "
            f"({entry['speedup']:.2f}x, cache hit rate "
            f"{cache['hit_rate']:.2f}, decisions "
            f"{'ok' if entry['decisions_consistent'] else 'DIVERGED'})")
    acc = report["acceptance"]
    lines.append(f"  acceptance: bert {acc['bert_speedup']:.2f}x vs "
                 f"{acc['threshold']}x floor -> "
                 f"{'pass' if acc['passed'] else 'FAIL'}"
                 f"{'' if acc['enforced'] else ' (not enforced: smoke)'}")
    return "\n".join(lines)


def _run(smoke: bool, pairs: int, write, archs=None,
         zoo_dir=None) -> dict:
    kwargs = {} if archs is None else {"archs": archs}
    if zoo_dir is not None:
        report = run_perf_benchmark(num_pairs=pairs, smoke=smoke,
                                    zoo_dir=zoo_dir, **kwargs)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_perf_benchmark(num_pairs=pairs, smoke=smoke,
                                        zoo_dir=Path(tmp) / "zoo",
                                        **kwargs)
    problems = validate_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_perf report: {problems}")
    if write:
        write_report(report, write if write is not True else REPORT_PATH)
    return report


def test_perf_throughput(benchmark):
    report = run_once(benchmark, lambda: _run(smoke=False, pairs=200,
                                              write=True))
    emit("perf", _format_report(report))
    assert all(e["decisions_consistent"]
               for e in report["architectures"].values())
    assert report["acceptance"]["bert_speedup"] >= SPEEDUP_THRESHOLD


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="match_many throughput: serial vs. fused/bucketed")
    parser.add_argument("--smoke", action="store_true",
                        help="few pairs, schema check only (CI)")
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--archs", default=None,
                        help="comma-separated subset of architectures "
                             "(default: all four)")
    parser.add_argument("--zoo-dir", default=None,
                        help="model-zoo cache directory (default: a "
                             "throwaway temp dir)")
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    archs = tuple(args.archs.split(",")) if args.archs else None
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, pairs=args.pairs, write=write,
                  archs=archs, zoo_dir=args.zoo_dir)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
