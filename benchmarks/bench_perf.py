"""Inference throughput — fast path, int8 kernels and the cascade.

Times ``match_many`` for every architecture on the same workload
(dblp-acm record pairs, each unique pair matched twice so the
tokenization cache sees repeats):

1. baseline — serial per-pair matching, fused kernels off, no cache:
   the pre-optimization path;
2. fast — length-bucketed batches + fused no-tape kernels + cache;
3. int8 — the fast path over calibrated per-channel quantized weights
   (gated on decision consistency with the float path, not speed);
4. cascade — DistilBERT screens every pair, ambiguous ones escalate to
   RoBERTa; the aggregate floor is >= 4x the RoBERTa serial baseline
   with cascade F1 within tolerance of RoBERTa-only.

Every floor lives in ``repro.perf.PerfGates``; the schema-2 report is
recorded in ``BENCH_perf.json`` at the repo root.  ``--smoke`` runs a
few pairs only to validate plumbing and the report schema.  Decisions
must agree between paths — a speedup that changes answers is a bug,
not an optimization.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.perf import run_perf_benchmark, validate_report, write_report

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_perf.json"


def _format_report(report: dict) -> str:
    lines = [f"match_many throughput "
             f"({report['config']['pairs']} pairs, batch size "
             f"{report['config']['batch_size']}"
             f"{', smoke' if report['smoke'] else ''})"]
    for arch, entry in report["architectures"].items():
        cache = entry["cache"]
        lines.append(
            f"  {arch:<10} {entry['baseline_pairs_per_sec']:8.1f} -> "
            f"{entry['fast_pairs_per_sec']:8.1f} pairs/s  "
            f"({entry['speedup']:.2f}x, cache hit rate "
            f"{cache['hit_rate']:.2f}, decisions "
            f"{'ok' if entry['decisions_consistent'] else 'DIVERGED'})")
        quantized = entry["quantized"]
        if quantized:
            lines.append(
                f"    int8   {quantized['pairs_per_sec']:8.1f} pairs/s  "
                f"(consistency {quantized['consistency']:.3f}, "
                f"artifact {quantized['artifact_bytes'] / 1024:.0f} KiB)")
    cascade = report["cascade"]
    if cascade:
        band = cascade["band"]
        lines.append(
            f"  cascade {cascade['primary']} -> {cascade['secondary']}: "
            f"{cascade['pairs_per_sec']:.1f} pairs/s, "
            f"{cascade['aggregate_speedup']:.2f}x aggregate, band "
            f"[{band['lo']:.3f}, {band['hi']:.3f}], escalation "
            f"{cascade['escalation_rate'] * 100.0:.1f}%, F1 delta "
            f"{cascade['f1']['delta']:+.4f}")
    acc = report["acceptance"]
    gates = [f"{arch} {gate['speedup']:.2f}x/{gate['floor']}x"
             for arch, gate in acc["architectures"].items()]
    if acc["cascade"]:
        gates.append(f"cascade "
                     f"{acc['cascade']['aggregate_speedup']:.2f}x/"
                     f"{acc['cascade']['floor']}x")
    lines.append(f"  acceptance: {', '.join(gates)} -> "
                 f"{'pass' if acc['passed'] else 'FAIL'}"
                 f"{'' if acc['enforced'] else ' (not enforced: smoke)'}")
    return "\n".join(lines)


def _run(smoke: bool, pairs: int, write, archs=None,
         zoo_dir=None) -> dict:
    kwargs = {} if archs is None else {"archs": archs}
    if zoo_dir is not None:
        report = run_perf_benchmark(num_pairs=pairs, smoke=smoke,
                                    zoo_dir=zoo_dir, **kwargs)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_perf_benchmark(num_pairs=pairs, smoke=smoke,
                                        zoo_dir=Path(tmp) / "zoo",
                                        **kwargs)
    problems = validate_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_perf report: {problems}")
    if write:
        write_report(report, write if write is not True else REPORT_PATH)
    return report


def test_perf_throughput(benchmark):
    report = run_once(benchmark, lambda: _run(smoke=False, pairs=200,
                                              write=True))
    emit("perf", _format_report(report))
    assert all(e["decisions_consistent"]
               for e in report["architectures"].values())
    acc = report["acceptance"]
    assert all(gate["passed"] for gate in acc["architectures"].values())
    assert all(gate["passed"] for gate in acc["quantization"].values())
    assert acc["cascade"] is None or acc["cascade"]["passed"]
    assert acc["f1"] is None or acc["f1"]["passed"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="match_many throughput: serial vs. fused/bucketed "
                    "vs. int8 vs. the DistilBERT->RoBERTa cascade")
    parser.add_argument("--smoke", action="store_true",
                        help="few pairs, schema check only (CI)")
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--archs", default=None,
                        help="comma-separated subset of architectures "
                             "(default: all four)")
    parser.add_argument("--zoo-dir", default=None,
                        help="model-zoo cache directory (default: a "
                             "throwaway temp dir)")
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    archs = tuple(args.archs.split(",")) if args.archs else None
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, pairs=args.pairs, write=write,
                  archs=archs, zoo_dir=args.zoo_dir)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
