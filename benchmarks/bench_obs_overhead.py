"""Tracing overhead — request-scoped observability must be near-free.

Request tracing (span trees, stage timings, exemplars) runs inline on
the serving hot path, so its cost is bounded by contract: with head
sampling enabled at the default rate (every request traced), saturation
throughput through :class:`repro.serve.MatchService` must stay within
3% of the same service with tracing disabled (``trace_sample_rate=0``).

This benchmark measures both configurations on the real clock — a
burst workload that saturates the micro-batcher so throughput reflects
backend + per-request bookkeeping, min over several interleaved reps —
and records the scorecard in ``BENCH_obs.json`` at the repo root.
``--smoke`` runs a few pairs only to validate plumbing and the report
schema (the budget is not enforced on smoke runs: too small for stable
timing).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.obs import MetricsRegistry
from repro.serve import MatchService, MatcherBackend, ServeConfig
from repro.serve.clock import SystemClock
from repro.serve.sim import generate_workload, run_simulation

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_obs.json"

#: Traced saturation throughput must stay within this fraction of the
#: untraced throughput.
OVERHEAD_BUDGET = 0.03

_REPS = 3
#: Offered rate high enough that every request is queued immediately —
#: the service runs back-to-back full batches and throughput measures
#: scoring plus per-request bookkeeping, not arrival pacing.
_SATURATION_RATE = 1e6


def _build_matcher(num_pairs: int, seed: int, zoo_dir):
    from repro.perf.bench import _build_workload, _fit_matcher
    splits, pairs = _build_workload(num_pairs, seed)
    matcher = _fit_matcher("bert", splits, seed, zoo_dir)
    matcher.match_many(pairs[:8], fast=True)  # warm token cache
    return matcher, pairs


def _pairs_per_sec(matcher, pairs, sample_rate: float, seed: int,
                   batch_size: int) -> float:
    workload = generate_workload(pairs, num_requests=len(pairs),
                                 rate=_SATURATION_RATE, seed=seed,
                                 pattern="poisson")
    service = MatchService(
        MatcherBackend(matcher, batch_size=batch_size),
        ServeConfig(max_batch_size=batch_size,
                    max_wait_ms=1.0,
                    max_queue=len(pairs) + batch_size,
                    trace_sample_rate=sample_rate),
        clock=SystemClock(), registry=MetricsRegistry())
    report = run_simulation(service, workload)
    if report.completed != len(pairs):
        raise AssertionError(
            f"saturation run dropped requests: {report.completed}"
            f"/{len(pairs)} completed")
    return report.throughput


def _measure(matcher, pairs, seed: int, batch_size: int,
             reps: int = _REPS) -> tuple[float, float]:
    """Min-throughput is noise-prone, so take the *best* of ``reps``
    interleaved runs per configuration (best-of filters scheduler
    hiccups; interleaving keeps thermal/cache drift symmetric)."""
    best_off = best_on = 0.0
    for rep in range(reps):
        best_off = max(best_off, _pairs_per_sec(
            matcher, pairs, 0.0, seed + rep, batch_size))
        best_on = max(best_on, _pairs_per_sec(
            matcher, pairs, 1.0, seed + rep, batch_size))
    return best_off, best_on


def run_obs_benchmark(num_pairs: int = 200, seed: int = 0,
                      zoo_dir=None, batch_size: int = 32,
                      smoke: bool = False) -> dict:
    """Run the tracing-overhead benchmark and return the report dict."""
    if smoke:
        num_pairs = min(num_pairs, 24)
    matcher, pairs = _build_matcher(num_pairs, seed, zoo_dir)
    untraced, traced = _measure(matcher, pairs, seed, batch_size)
    regression = 1.0 - traced / max(untraced, 1e-9)
    return {
        "benchmark": "obs_overhead",
        "smoke": bool(smoke),
        "config": {"arch": "bert", "pairs": num_pairs, "seed": seed,
                   "batch_size": batch_size, "reps": _REPS},
        "untraced_pairs_per_sec": untraced,
        "traced_pairs_per_sec": traced,
        "acceptance": {
            "regression": regression,
            "budget": OVERHEAD_BUDGET,
            "enforced": not smoke,
            "passed": bool(smoke or regression <= OVERHEAD_BUDGET),
        },
    }


def validate_obs_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    for key in ("benchmark", "smoke", "config", "untraced_pairs_per_sec",
                "traced_pairs_per_sec", "acceptance"):
        if key not in report:
            problems.append(f"missing key {key!r}")
    acceptance = report.get("acceptance", {})
    for key in ("regression", "budget", "enforced", "passed"):
        if key not in acceptance:
            problems.append(f"acceptance missing key {key!r}")
    for key in ("untraced_pairs_per_sec", "traced_pairs_per_sec"):
        value = report.get(key)
        if isinstance(value, (int, float)) and value <= 0:
            problems.append(f"{key} must be positive, got {value}")
    return problems


def _format_report(report: dict) -> str:
    config = report["config"]
    acc = report["acceptance"]
    return "\n".join([
        f"tracing overhead at saturation ({config['arch']}, "
        f"{config['pairs']} pairs, batch size {config['batch_size']}, "
        f"best of {config['reps']} reps"
        f"{', smoke' if report['smoke'] else ''})",
        f"  trace_sample_rate=0.0 : "
        f"{report['untraced_pairs_per_sec']:8.1f} pairs/s",
        f"  trace_sample_rate=1.0 : "
        f"{report['traced_pairs_per_sec']:8.1f} pairs/s",
        f"  acceptance: regression {acc['regression']:+.2%} vs "
        f"{acc['budget']:.0%} budget -> "
        f"{'pass' if acc['passed'] else 'FAIL'}"
        f"{'' if acc['enforced'] else ' (not enforced: smoke)'}",
    ])


def _run(smoke: bool, pairs: int, write, zoo_dir=None) -> dict:
    if zoo_dir is not None:
        report = run_obs_benchmark(num_pairs=pairs, smoke=smoke,
                                   zoo_dir=zoo_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_obs_benchmark(num_pairs=pairs, smoke=smoke,
                                       zoo_dir=Path(tmp) / "zoo")
    problems = validate_obs_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_obs report: {problems}")
    if write:
        path = Path(write if write is not True else REPORT_PATH)
        path.write_text(json.dumps(report, indent=2, sort_keys=True)
                        + "\n")
    return report


def test_obs_overhead(benchmark):
    report = run_once(benchmark, lambda: _run(smoke=False, pairs=200,
                                              write=True))
    emit("obs_overhead", _format_report(report))
    assert report["acceptance"]["regression"] <= OVERHEAD_BUDGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="request-tracing overhead on the serving hot path")
    parser.add_argument("--smoke", action="store_true",
                        help="few pairs, schema check only (CI)")
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--zoo-dir", default=None,
                        help="model-zoo cache directory (default: a "
                             "throwaway temp dir)")
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, pairs=args.pairs, write=write,
                  zoo_dir=args.zoo_dir)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
