"""Table 6 — fine-tuning wall-clock per epoch.

Times one fine-tuning epoch of each architecture on each dataset.
Absolute numbers are not comparable to the paper's TITAN Xp; the *ratios*
are the reproduced quantity: DistilBERT ~ 0.5x BERT, RoBERTa ~ 1x BERT,
XLNet > 1x BERT.
"""

from repro.evaluation import table6

from _shared import bench_scale, emit, run_once


def test_table6_training_time(benchmark):
    scale = bench_scale()
    seconds, rendered = run_once(benchmark, lambda: table6(scale))
    emit("table6", rendered)
    for dataset, per_arch in seconds.items():
        assert per_arch["distilbert"] < per_arch["bert"], dataset
        assert per_arch["xlnet"] > per_arch["distilbert"], dataset
