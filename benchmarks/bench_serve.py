"""Serving throughput/latency — micro-batching must beat serial trickle.

Replays seeded Poisson workloads (dblp-acm record pairs) through the
:class:`repro.serve.MatchService` on the real clock at three offered
load levels (0.5x / 1x / 2x the measured serial ``match_many``
throughput) and reports per-level completion counts, throughput and
p50/p95 request latency against the serial baseline.

The acceptance floor (service throughput at the top load level >= half
the serial pairs/sec — coalescing overhead must not eat the batching
win) is enforced on full runs and recorded in ``BENCH_serve.json`` at
the repo root; ``--smoke`` runs a few pairs only to validate plumbing
and the report schema.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.serve import (run_serve_benchmark, validate_serve_report,
                         write_serve_report)
from repro.serve.bench import EFFICIENCY_FLOOR

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_serve.json"


def _format_report(report: dict) -> str:
    config = report["config"]
    baseline = report["baseline"]
    lines = [f"match service under load ({config['arch']}, "
             f"{config['pairs']} pairs, batch size "
             f"{config['batch_size']}, flush {config['max_wait_ms']} ms"
             f"{', smoke' if report['smoke'] else ''})",
             f"  serial baseline: {baseline['pairs_per_sec']:8.1f} "
             f"pairs/s"]
    for name, level in report["levels"].items():
        lines.append(
            f"  {name:<5} load {level['offered_rate']:8.1f} req/s: "
            f"{level['completed']}/{level['offered']} done at "
            f"{level['throughput']:8.1f} req/s, "
            f"p50 {level['p50_latency_ms']:7.1f} ms, "
            f"p95 {level['p95_latency_ms']:7.1f} ms, "
            f"{level['rejected']} rejected, "
            f"{level['timeouts']} timed out")
    acc = report["acceptance"]
    lines.append(f"  acceptance: efficiency "
                 f"{acc['efficiency_at_top_load']:.2f} vs "
                 f"{acc['floor']} floor -> "
                 f"{'pass' if acc['passed'] else 'FAIL'}"
                 f"{'' if acc['enforced'] else ' (not enforced: smoke)'}")
    return "\n".join(lines)


def _run(smoke: bool, pairs: int, write, arch: str = "bert",
         zoo_dir=None) -> dict:
    if zoo_dir is not None:
        report = run_serve_benchmark(arch=arch, num_pairs=pairs,
                                     smoke=smoke, zoo_dir=zoo_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_serve_benchmark(arch=arch, num_pairs=pairs,
                                         smoke=smoke,
                                         zoo_dir=Path(tmp) / "zoo")
    problems = validate_serve_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_serve report: {problems}")
    if write:
        write_serve_report(report,
                           write if write is not True else REPORT_PATH)
    return report


def test_serve_throughput(benchmark):
    report = run_once(benchmark, lambda: _run(smoke=False, pairs=200,
                                              write=True))
    emit("serve", _format_report(report))
    assert report["acceptance"]["efficiency_at_top_load"] \
        >= EFFICIENCY_FLOOR


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="micro-batching match service vs. serial matching")
    parser.add_argument("--smoke", action="store_true",
                        help="few pairs, schema check only (CI)")
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--arch", default="bert",
                        choices=["bert", "roberta", "distilbert",
                                 "xlnet"])
    parser.add_argument("--zoo-dir", default=None,
                        help="model-zoo cache directory (default: a "
                             "throwaway temp dir)")
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, pairs=args.pairs, write=write,
                  arch=args.arch, zoo_dir=args.zoo_dir)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
