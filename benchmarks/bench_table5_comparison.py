"""Table 5 — best transformer vs Magellan vs DeepMatcher.

The headline comparison: for every dataset, run both baselines and all
four transformers (at the reduced bench protocol), report the best
transformer's F1 and the delta over the best baseline, next to the
paper's numbers.  Shape to verify: large positive deltas on the hard
datasets (Abt-Buy, iTunes-Amazon, Walmart-Amazon), small ones on the two
DBLP datasets.
"""

from repro.evaluation import table5

from _shared import bench_scale, emit, run_once


def test_table5_comparison(benchmark):
    scale = bench_scale()
    rows, rendered = run_once(benchmark, lambda: table5(scale))
    emit("table5", rendered)
    assert len(rows) == 5
    by_name = {r.dataset: r for r in rows}
    # Shape check from the paper: the DBLP datasets are the easy ones —
    # every method scores higher there than on the product datasets.
    assert by_name["dblp-acm"].best_transformer > \
        by_name["walmart-amazon"].best_transformer
