"""Sanitizer overhead — anomaly mode must be pay-for-what-you-use.

``repro.analysis.detect_anomalies`` hooks ``Tensor._make`` and
``Tensor.backward`` only while its context is active, so a training loop
that never enters the context must run on the pristine fast path.  This
benchmark guards that contract on a small fine-tune step (forward +
cross-entropy + backward + Adam step on a 2-layer BERT classifier):

1. structurally — after a sanitized step the hooks are restored to the
   exact original function objects, so the off path is byte-identical;
2. empirically — the min-of-reps step time measured after sanitizer use
   stays within 2% of the time measured before any sanitizer ran;
3. informationally — the sanitizer-on slowdown is reported (it is
   allowed to be large; anomaly mode is a debugging tool).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis import detect_anomalies
from repro.models import SequenceClassifier, build_backbone, default_config
from repro.nn import Adam, Tensor, cross_entropy

from _shared import emit, run_once

_REPS = 20


def _make_step():
    rng = np.random.default_rng(0)
    config = default_config("bert", vocab_size=120, d_model=32,
                            num_layers=2, num_heads=2, max_position=64,
                            dropout=0.0)
    model = SequenceClassifier(build_backbone(config, rng), config, rng)
    optimizer = Adam(model.parameters(), lr=1e-3)
    input_ids = rng.integers(0, config.vocab_size, size=(4, 16))
    labels = rng.integers(0, 2, size=4)

    def step():
        optimizer.zero_grad()
        loss = cross_entropy(model(input_ids), labels)
        loss.backward()
        optimizer.step()
        return float(loss.item())

    return model, step


def _min_step_time(step, reps: int = _REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        step()
        best = min(best, time.perf_counter() - start)
    return best


def test_sanitizer_off_overhead(benchmark):
    _, step = _make_step()
    pristine_make = Tensor._make
    pristine_backward = Tensor.backward

    def measure():
        before = _min_step_time(step)
        # No parameters= audit here: the bench model legitimately leaves
        # its match-feature weights unused (no match_features input).
        with detect_anomalies(check_dead_leaves=False):
            on = _min_step_time(step, reps=3)
        after = _min_step_time(step)
        return before, on, after

    before, on, after = run_once(benchmark, measure)

    # Contract 1: leaving the context restores the exact fast-path
    # functions, so "off" is structurally zero-overhead.
    assert Tensor._make is pristine_make
    assert Tensor.backward is pristine_backward

    # Contract 2: the measured off-path residual stays under 2%.
    residual = after / before - 1.0
    assert residual < 0.02, (
        f"sanitizer-off step slowed down by {residual:.1%} (>2%)")

    text = "\n".join([
        "Sanitizer overhead (min over "
        f"{_REPS} reps of one fine-tune step)",
        f"  off, before anomaly mode : {before * 1e3:8.2f} ms",
        f"  off, after anomaly mode  : {after * 1e3:8.2f} ms "
        f"(residual {residual:+.2%}, budget <2%)",
        f"  on (debug anomaly mode)  : {on * 1e3:8.2f} ms "
        f"({on / before:.2f}x, informational)",
    ])
    emit("sanitizer_overhead", text)
