"""Resilient serving — availability under chaos, overhead without it.

Injects the same seeded chaos schedule (worker kills, slow forwards,
poisoned forwards) into a naive single :class:`repro.serve.MatchService`
client and into the three-replica fault-tolerance tier
(:class:`repro.serve.ResilientClient` — retries with seeded backoff,
per-replica circuit breakers, hedged requests, load shedding, and the
self-healing :class:`repro.serve.ReplicaSet` supervisor), both at 1x
the measured serial offered load.

Acceptance (enforced on full runs, recorded in
``BENCH_resilient.json`` at the repo root): the resilient tier
sustains >= 99.9% non-error completion while the naive client
measurably does not (< 99%), and with chaos off the tier's throughput
overhead over the bare service stays <= 2%.  ``--smoke`` runs a few
requests only to validate plumbing and the report schema.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.serve import (run_resilient_benchmark,
                         validate_resilient_report,
                         write_resilient_report)
from repro.serve.bench_resilient import (AVAILABILITY_FLOOR,
                                         NAIVE_CEILING,
                                         OVERHEAD_BUDGET)

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_resilient.json"


def _format_report(report: dict) -> str:
    config = report["config"]
    baseline = report["baseline"]
    overhead = report["overhead"]
    chaos = report["chaos"]
    lines = [f"resilient serving tier ({config['arch']}, "
             f"{config['pairs']} pairs, {config['num_requests']} "
             f"requests, batch size {config['batch_size']}"
             f"{', smoke' if report['smoke'] else ''})",
             f"  serial baseline: {baseline['pairs_per_sec']:8.1f} "
             f"pairs/s",
             f"  chaos-off overhead: "
             f"{overhead['overhead_fraction'] * 100.0:6.2f}% "
             f"(budget {OVERHEAD_BUDGET * 100.0:.0f}%)"]
    for side in ("naive", "resilient"):
        stats = chaos[side]
        lines.append(
            f"  {side:<9} under chaos: "
            f"{stats['completed']}/{stats['offered']} done "
            f"({stats['availability'] * 100.0:6.2f}% avail, "
            f"{stats['rejected']} rejected, "
            f"{stats['timeouts']} timed out, "
            f"{stats['errors']} errors, "
            f"p95 {stats['p95_latency_ms']:7.1f} ms)")
    lines.append(f"  recovery: {chaos['respawns']} respawn(s), "
                 f"{chaos['retries']} retries spent")
    acc = report["acceptance"]
    lines.append(f"  acceptance: overhead "
                 f"{acc['overhead_fraction']:.3f} <= "
                 f"{acc['overhead_budget']}, resilient "
                 f"{acc['resilient_availability']:.4f} >= "
                 f"{acc['availability_floor']}, naive "
                 f"{acc['naive_availability']:.4f} < "
                 f"{acc['naive_ceiling']} -> "
                 f"{'pass' if acc['passed'] else 'FAIL'}"
                 f"{'' if acc['enforced'] else ' (not enforced: smoke)'}")
    return "\n".join(lines)


def _run(smoke: bool, pairs: int, requests: int, write,
         arch: str = "bert", zoo_dir=None) -> dict:
    if zoo_dir is not None:
        report = run_resilient_benchmark(arch=arch, num_pairs=pairs,
                                         num_requests=requests,
                                         smoke=smoke, zoo_dir=zoo_dir)
    else:
        with tempfile.TemporaryDirectory() as tmp:
            report = run_resilient_benchmark(arch=arch, num_pairs=pairs,
                                             num_requests=requests,
                                             smoke=smoke,
                                             zoo_dir=Path(tmp) / "zoo")
    problems = validate_resilient_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_resilient report: "
                             f"{problems}")
    if write:
        write_resilient_report(report,
                               write if write is not True
                               else REPORT_PATH)
    return report


def test_resilient_availability(benchmark):
    report = run_once(benchmark, lambda: _run(smoke=False, pairs=200,
                                              requests=1000,
                                              write=True))
    emit("resilient", _format_report(report))
    acc = report["acceptance"]
    assert acc["resilient_availability"] >= AVAILABILITY_FLOOR
    assert acc["naive_availability"] < NAIVE_CEILING
    assert acc["overhead_fraction"] <= OVERHEAD_BUDGET


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fault-tolerance tier vs. naive client under "
                    "seeded chaos")
    parser.add_argument("--smoke", action="store_true",
                        help="few requests, schema check only (CI)")
    parser.add_argument("--pairs", type=int, default=200)
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--arch", default="bert",
                        choices=["bert", "roberta", "distilbert",
                                 "xlnet"])
    parser.add_argument("--zoo-dir", default=None,
                        help="model-zoo cache directory (default: a "
                             "throwaway temp dir)")
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, pairs=args.pairs,
                  requests=args.requests, write=write, arch=args.arch,
                  zoo_dir=args.zoo_dir)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
