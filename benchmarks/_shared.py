"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
reduced ``ExperimentScale.bench()`` protocol (override with the
REPRO_BENCH_SCALE / REPRO_BENCH_EPOCHS / REPRO_BENCH_RUNS environment
variables).  Each run prints the rows/series the paper reports, side by
side with the paper's numbers where applicable, and writes the same text
to ``benchmarks/out/``.  Completed fine-tuning cells are cached in
``.bench_cache`` so the table and figure benches share work.

Telemetry: ``run_once`` bookmarks the process tracer before the timed
call, and ``emit`` writes a ``<name>.telemetry.jsonl`` sidecar next to
the text output containing every tracing span recorded during the run
(fine-tune epochs/evals, pre-training, DeepMatcher epochs, ...), so the
BENCH_*.json trajectories gain per-phase timing.  Render a sidecar with
``python -m repro telemetry benchmarks/out/<name>.telemetry.jsonl``.
"""

from __future__ import annotations

from pathlib import Path

from repro.evaluation import ExperimentScale
from repro.obs import JsonlSink, TelemetryRun, default_tracer

OUT_DIR = Path(__file__).parent / "out"

# Tracer bookmark taken by the most recent run_once(); emit() drains the
# spans completed after it into the telemetry sidecar.
_TRACE_MARK = 0


def bench_scale() -> ExperimentScale:
    return ExperimentScale.bench()


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    _write_telemetry_sidecar(name)
    print(f"\n{text}\n")
    return text


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    global _TRACE_MARK
    _TRACE_MARK = default_tracer().mark()
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def _write_telemetry_sidecar(name: str) -> None:
    path = OUT_DIR / f"{name}.telemetry.jsonl"
    run = TelemetryRun(JsonlSink(path), run_id=f"bench-{name}",
                       span_mark=_TRACE_MARK)
    run.emit("run_begin", command="bench", name=name)
    run.close()
