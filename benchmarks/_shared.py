"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at the
reduced ``ExperimentScale.bench()`` protocol (override with the
REPRO_BENCH_SCALE / REPRO_BENCH_EPOCHS / REPRO_BENCH_RUNS environment
variables).  Each run prints the rows/series the paper reports, side by
side with the paper's numbers where applicable, and writes the same text
to ``benchmarks/out/``.  Completed fine-tuning cells are cached in
``.bench_cache`` so the table and figure benches share work.
"""

from __future__ import annotations

from pathlib import Path

from repro.evaluation import ExperimentScale

OUT_DIR = Path(__file__).parent / "out"


def bench_scale() -> ExperimentScale:
    return ExperimentScale.bench()


def emit(name: str, text: str) -> str:
    """Print a result block and persist it under benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")
    return text


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
