"""Blocking recall vs. reduction — the 100k-scale candidate-generation gate.

Runs the four-blocker comparison (token, sorted-neighborhood, TF-IDF
cosine, MinHash-LSH) on a small generated catalog, then the enforced
gate: on a seeded 100k-record catalog the MinHash-LSH blocker must reach
pairs-completeness >= 0.95 at reduction ratio >= 0.99
(``repro.dedupe.BlockingGates``), and an end-to-end ``repro dedupe`` run
over the same catalog must complete while streaming — its high-water
candidate batch bounded by the configured emission batch, evidence the
|A| x |A| cross product was never materialized.

The report is recorded in ``BENCH_blocking.json`` at the repo root.
``--smoke`` shrinks both catalogs to validate plumbing and the report
schema without the 100k run.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.dedupe.bench import (BlockingBenchConfig, run_blocking_benchmark,
                                validate_report, write_report)

from _shared import emit, run_once

REPORT_PATH = Path(__file__).parent.parent / "BENCH_blocking.json"


def _format_report(report: dict) -> str:
    config = report["config"]
    lines = [f"blocking recall vs. reduction "
             f"(comparison at {config['comparison_records']} records, "
             f"gate at {config['num_records']}"
             f"{', smoke' if report['smoke'] else ''})"]
    for name, entry in report["comparison"].items():
        lines.append(
            f"  {name:<20} PC {entry['pairs_completeness']:.3f}  "
            f"RR {entry['reduction_ratio']:.4f}  "
            f"{entry['num_candidates']:>8} candidates  "
            f"{entry['seconds']:7.3f}s")
    gate = report["gate"]
    lines.append(
        f"  gate (minhash_lsh @ {gate['records']} records): "
        f"PC {gate['pairs_completeness']:.4f}, "
        f"RR {gate['reduction_ratio']:.6f}, "
        f"{gate['num_candidates']} candidates in {gate['seconds']}s")
    dedupe = report["dedupe"]
    lines.append(
        f"  dedupe: {dedupe['records']} records -> "
        f"{dedupe['entities']} entities (gold {dedupe['gold_entities']}) "
        f"in {dedupe['seconds']}s, peak batch "
        f"{dedupe['max_candidate_batch']}/"
        f"{dedupe['candidate_batch_limit']} "
        f"({'streamed' if dedupe['streamed'] else 'NOT STREAMED'})")
    acc = report["acceptance"]
    lines.append(
        f"  acceptance: PC {acc['pairs_completeness']:.4f}/"
        f"{acc['pairs_completeness_floor']}, "
        f"RR {acc['reduction_ratio']:.6f}/"
        f"{acc['reduction_ratio_floor']}, streamed {acc['streamed']} -> "
        f"{'pass' if acc['passed'] else 'FAIL'}"
        f"{'' if acc['enforced'] else ' (not enforced: smoke)'}")
    return "\n".join(lines)


def _run(smoke: bool, records: int, seed: int, write) -> dict:
    config = BlockingBenchConfig(num_records=records, seed=seed)
    report = run_blocking_benchmark(config, smoke=smoke)
    problems = validate_report(report)
    if problems:
        raise AssertionError(f"invalid BENCH_blocking report: {problems}")
    if write:
        write_report(report, write if write is not True else REPORT_PATH)
    return report


def test_blocking_gate(benchmark):
    # Smoke scale inside the suite: the 100k gate run belongs to
    # `repro bench blocking` / `python benchmarks/bench_blocking.py`.
    report = run_once(benchmark,
                      lambda: _run(smoke=True, records=2_000, seed=7,
                                   write=False))
    emit("blocking", _format_report(report))
    acc = report["acceptance"]
    assert acc["passed"], "smoke run must clear the gate floors"
    assert report["dedupe"]["streamed"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="blocking recall vs. reduction with the enforced "
                    "100k MinHash-LSH gate")
    parser.add_argument("--smoke", action="store_true",
                        help="small catalogs, schema check only (CI)")
    parser.add_argument("--records", type=int, default=100_000,
                        help="gate-scale catalog size (default 100000)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default=None,
                        help=f"report path (default: {REPORT_PATH})")
    parser.add_argument("--no-write", dest="write", action="store_false",
                        help="skip writing the report")
    args = parser.parse_args(argv)
    write = (args.output or True) if args.write else False
    report = _run(smoke=args.smoke, records=args.records, seed=args.seed,
                  write=write)
    print(_format_report(report))
    if args.write:
        print(f"report written to {args.output or REPORT_PATH}")
    acc = report["acceptance"]
    return 0 if (acc["passed"] or not acc["enforced"]) else 1


if __name__ == "__main__":
    sys.exit(main())
