"""Table 3 — dataset statistics.

Regenerates the five benchmarks at full paper scale and prints size,
match count and attribute count next to the paper's Table 3 values
(which the generators are calibrated to match exactly at scale=1).
"""

from repro.data import load_benchmark, table3_spec
from repro.evaluation import ALL_DATASETS
from repro.utils import format_table

from _shared import emit, run_once


def _build():
    rows = []
    for name in ALL_DATASETS:
        spec = table3_spec(name)
        dataset = load_benchmark(name, seed=7, scale=1.0)
        stats = dataset.stats()
        rows.append([name, spec.domain, stats.size, spec.size,
                     stats.num_matches, spec.num_matches,
                     stats.num_attributes])
    return format_table(
        ["Dataset", "Domain", "Size", "paper", "# Matches", "paper",
         "# Attr."],
        rows, title="Table 3 — dataset statistics (ours vs paper)")


def test_table3_datasets(benchmark):
    text = run_once(benchmark, _build)
    emit("table3", text)
    assert "abt-buy" in text
