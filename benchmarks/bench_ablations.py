"""Ablations of the design choices DESIGN.md calls out.

1. pre-training vs from-scratch initialization (the paper's thesis);
2. clean vs dirty data (what the corruption costs);
3. class-balanced vs plain fine-tuning loss (reproduction adaptation);
4. all-attribute vs title-only serialization.
"""

from repro.evaluation import (ablate_balanced_loss, ablate_dirty,
                              ablate_pretraining, ablate_serialization)

from _shared import bench_scale, emit, run_once


def test_ablation_pretraining(benchmark):
    result = run_once(
        benchmark,
        lambda: ablate_pretraining("roberta", "dblp-acm", bench_scale()))
    emit("ablation_pretraining", result.rendered())
    # The paper's thesis: the pre-trained checkpoint beats random init.
    assert result.f1_a >= result.f1_b - 3.0


def test_ablation_dirty(benchmark):
    result = run_once(
        benchmark,
        lambda: ablate_dirty("roberta", "walmart-amazon", bench_scale()))
    emit("ablation_dirty", result.rendered())
    assert result.f1_a >= 0.0 and result.f1_b >= 0.0


def test_ablation_balanced_loss(benchmark):
    result = run_once(
        benchmark,
        lambda: ablate_balanced_loss("roberta", "dblp-acm", bench_scale()))
    emit("ablation_balanced_loss", result.rendered())
    assert result.f1_a >= 0.0


def test_ablation_serialization(benchmark):
    result = run_once(
        benchmark,
        lambda: ablate_serialization("roberta", "walmart-amazon",
                                     bench_scale()))
    emit("ablation_serialization", result.rendered())
    assert result.f1_a >= 0.0
