"""Figure 10 — F1 vs fine-tuning epoch on abt-buy.

Reproduces the per-epoch test-F1 curves of all four architectures
(epoch 0 = zero-shot).  Shape to verify: zero-shot is poor, F1 rises
sharply after the first epoch, and the curves flatten within a few
epochs — the paper's convergence story.
"""

from repro.evaluation import figure

from _shared import bench_scale, emit, run_once


def test_figure10_abt_buy(benchmark):
    result = run_once(benchmark, lambda: figure(10, bench_scale()))
    emit("figure10", result.rendered())
    assert result.dataset == "abt-buy"
    for arch, curve in result.curves.items():
        assert len(curve) >= 2, arch
        # fine-tuning must help over zero-shot
        assert max(curve[1:]) >= curve[0] - 5.0, arch
