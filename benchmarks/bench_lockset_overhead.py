"""Lockset detector overhead — instrumentation must be pay-per-use.

``repro.utils.concurrency`` threads ``access()`` probes and lock
factories through the hot paths of ``repro.perf.cache``,
``repro.obs.registry`` and ``repro.serve``; with no
:class:`~repro.analysis.concurrency.RaceDetector` active each probe is
one module-global load and a ``None`` test.  This benchmark guards that
contract on the busiest instrumented path — LRU cache gets/puts mixed
with registry counter increments and histogram observes:

1. structurally — after a detector context exits, the access hook and
   lock factory slots are back to ``None``, so the off path is the
   pristine single-check fast path;
2. empirically — the min-of-reps workload time measured after detector
   use stays within 2% of the time measured before any detector ran;
3. informationally — the detector-on slowdown is reported (it may be
   large; the detector is a debugging tool, not a production mode).
"""

from __future__ import annotations

import time

from repro.analysis.concurrency import RaceDetector
from repro.obs import MetricsRegistry
from repro.perf.cache import LRUCache
from repro.utils.concurrency import access_hook, lock_factory

from _shared import emit, run_once

_CYCLES = 7
_REPS = 4
_OPS = 12000


def _make_workload():
    def workload():
        cache = LRUCache(maxsize=256)
        registry = MetricsRegistry()
        ops = registry.counter("bench.lockset.ops")
        latency = registry.histogram("bench.lockset.latency")
        for i in range(_OPS):
            key = (i * 37) % 384
            if cache.get(key) is None:
                cache.put(key, key)
            ops.inc()
            latency.observe(i * 1e-6)
        return cache.hit_rate

    return workload


def _min_time(workload, reps: int = _REPS) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def test_lockset_off_overhead(benchmark):
    workload = _make_workload()

    def measure():
        # A before/after pair measured minutes apart would mostly see
        # CPU-frequency drift, not hook overhead; instead each cycle
        # measures off, on, off back to back, and the per-cycle
        # residual's median cancels the drift and outlier scheduling
        # noise alike.
        workload()  # warm allocator and code paths before timing
        cycles = []
        for _ in range(_CYCLES):
            before = _min_time(workload)
            with RaceDetector():
                on = _min_time(workload, reps=1)
            after = _min_time(workload)
            cycles.append((before, on, after))
        return cycles

    cycles = run_once(benchmark, measure)

    # Contract 1: leaving the context clears both global hook slots, so
    # "off" is structurally the single None-check fast path.
    assert access_hook() is None
    assert lock_factory() is None

    # Contract 2: the off-path residual stays under 2%.  A real
    # residual (a leaked hook) is structural — it would slow *every*
    # cycle — while scheduler/frequency noise is one-sided, so the
    # best cycle is the right gate: it only passes if at least one
    # drift-free before/after pair ran at full speed.
    residuals = sorted(after / before - 1.0
                       for before, _on, after in cycles)
    residual = residuals[0]
    median = residuals[len(residuals) // 2]
    assert residual < 0.02, (
        f"detector-off workload slowed down by {residual:.1%} in every "
        f"cycle (>2%) [per-cycle residuals: "
        f"{', '.join(f'{r:+.1%}' for r in residuals)}]")

    best_off = min(before for before, _on, _after in cycles)
    best_on = min(on for _before, on, _after in cycles)
    text = "\n".join([
        f"Lockset detector overhead ({_CYCLES} off/on/off cycles, "
        f"min over {_REPS} reps of {_OPS} cache+metrics ops)",
        f"  off (best cycle)        : {best_off * 1e3:8.2f} ms",
        f"  off residual after use  : {residual:+.2%} "
        f"(best cycle, budget <2%; median {median:+.2%})",
        f"  on (race detection)     : {best_on * 1e3:8.2f} ms "
        f"({best_on / best_off:.2f}x, informational)",
    ])
    emit("lockset_overhead", text)
