"""Figure 11 — F1 vs fine-tuning epoch on itunes-amazon.

Reproduces the per-epoch test-F1 curves of all four architectures
(epoch 0 = zero-shot).  Shape to verify: zero-shot is poor, F1 rises
sharply after the first epoch, and the curves flatten within a few
epochs — the paper's convergence story.
"""

from repro.evaluation import figure

from _shared import bench_scale, emit, run_once


def test_figure11_itunes_amazon(benchmark):
    result = run_once(benchmark, lambda: figure(11, bench_scale()))
    emit("figure11", result.rendered())
    assert result.dataset == "itunes-amazon"
    # iTunes-Amazon is the 539-pair dataset: the paper's own Figure 11
    # shows F1 collapsing to ~0 after epoch 1 and wild swings between
    # epochs, so the only stable property to assert is structural.
    for arch, curve in result.curves.items():
        assert len(curve) >= 2, arch
