"""Resilience overhead — fault tolerance must be pay-for-what-you-use.

``fine_tune(..., resilience=None)`` (the default) must run the original
fast path: no guard checks, no snapshot packing, no chaos branches
beyond a handful of ``is None`` tests.  This benchmark guards that
contract on a complete miniature fine-tune run (2 epochs on a reduced
dblp-acm split with a 2-layer BERT):

1. empirically — the min-of-reps run time with ``resilience=None``
   stays within 2% of the same build measured before the resilience
   module was ever exercised;
2. informationally — the fully armed configuration (checkpoints every
   few steps + divergence guard) is timed and reported, it is allowed
   to cost more (it does real I/O).
"""

from __future__ import annotations

import time

from repro.data import load_benchmark, split_dataset
from repro.matching import FineTuneConfig, fine_tune
from repro.pretraining import ZooSettings, get_pretrained
from repro.resilience import ResilienceConfig
from repro.utils import child_rng

from _shared import emit, run_once

_REPS = 3


def _make_run(tmp_dir):
    settings = ZooSettings(base_steps=25, base_examples=150,
                           tokenizer_sentences=150, vocab_size=220,
                           d_model=32, num_layers=2, num_heads=2,
                           max_position=64, seq_len=32)
    pretrained = get_pretrained("bert", seed=0, settings=settings,
                                zoo_dir=tmp_dir / "zoo")
    data = load_benchmark("dblp-acm", seed=7, scale=0.03)
    splits = split_dataset(data, child_rng(7, "split", "dblp-acm"))
    config = FineTuneConfig(epochs=2, batch_size=8, max_length_cap=32)

    def run(resilience=None):
        return fine_tune(pretrained, splits.train, splits.test,
                         config=config, seed=3, resilience=resilience)

    return run


def _min_run_time(run, reps: int = _REPS, **kwargs) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        run(**kwargs)
        best = min(best, time.perf_counter() - start)
    return best


def test_resilience_off_overhead(benchmark, tmp_path):
    run = _make_run(tmp_path)

    def measure():
        baseline = _min_run_time(run)
        armed = ResilienceConfig(checkpoint_dir=tmp_path / "ck",
                                 checkpoint_every=5)
        on = _min_run_time(run, reps=1, resilience=armed)
        off = _min_run_time(run)
        return baseline, on, off

    baseline, on, off = run_once(benchmark, measure)

    # Contract: with resilience=None the loop takes its original fast
    # path — the residual after exercising the armed path stays under 2%.
    residual = off / baseline - 1.0
    assert residual < 0.02, (
        f"resilience-off fine-tune slowed down by {residual:.1%} (>2%)")

    text = "\n".join([
        f"Resilience overhead (min over {_REPS} reps of a 2-epoch "
        f"fine-tune)",
        f"  resilience=None, baseline : {baseline:8.2f} s",
        f"  resilience=None, after    : {off:8.2f} s "
        f"(residual {residual:+.2%}, budget <2%)",
        f"  armed (ckpt every 5 + guard): {on:8.2f} s "
        f"({on / baseline:.2f}x, informational)",
    ])
    emit("resilience_overhead", text)
